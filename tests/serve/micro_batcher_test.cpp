#include "serve/micro_batcher.h"

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "obs/metrics.h"
#include "serve/result_cache.h"
#include "serve_test_util.h"

namespace tailormatch::serve {
namespace {

using serve_test::TinyServeModel;
using serve_test::WrapServed;

data::EntityPair Pair(const std::string& left, const std::string& right) {
  return core::MakeSurfacePair(left, right, data::Domain::kProduct);
}

int64_t CounterValue(const char* name) {
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  const int64_t* value = snapshot.FindCounter(name);
  return value == nullptr ? 0 : *value;
}

TEST(MicroBatcherTest, DecisionMatchesDirectMatcher) {
  std::shared_ptr<llm::SimLlm> model = TinyServeModel();
  core::Matcher matcher(model);
  core::MatchDecision direct = matcher.Match("jabra evolve 80", "sram pg 730");

  MicroBatcherConfig config;
  config.batch_parallelism = 2;
  MicroBatcher batcher(config);
  ServeResult result = batcher.SubmitAndWait(
      WrapServed(model), prompt::PromptTemplate::kDefault,
      Pair("jabra evolve 80", "sram pg 730"));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk);
  EXPECT_EQ(result.decision.probability, direct.probability);
  EXPECT_EQ(result.decision.is_match, direct.is_match);
  EXPECT_EQ(result.decision.response, direct.response);
  EXPECT_EQ(result.model_version, 1u);
  EXPECT_FALSE(result.cache_hit);
}

TEST(MicroBatcherTest, NullModelRejectedAsError) {
  MicroBatcher batcher(MicroBatcherConfig{});
  ServeResult result = batcher.SubmitAndWait(
      nullptr, prompt::PromptTemplate::kDefault, Pair("a", "b"));
  EXPECT_EQ(result.outcome, RequestOutcome::kError);
}

TEST(MicroBatcherTest, ConcurrentSubmissionsCoalesceIntoOneBatch) {
  MicroBatcherConfig config;
  config.max_batch = 8;
  config.max_wait_us = 200000;  // plenty to collect a burst on a slow box
  config.batch_parallelism = 1;
  MicroBatcher batcher(config);
  std::shared_ptr<const ServedModel> served = WrapServed(TinyServeModel());

  const int64_t batches_before = CounterValue("serve.batches");
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(batcher.Submit(served, prompt::PromptTemplate::kDefault,
                                     Pair("widget " + std::to_string(i),
                                          "widget " + std::to_string(i))));
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().outcome, RequestOutcome::kOk);
  }
  // The first request opens the batch window; the remaining seven arrive
  // well inside the 200ms window, so one dispatch covers all eight.
  EXPECT_EQ(CounterValue("serve.batches"), batches_before + 1);
}

TEST(MicroBatcherTest, ExpiredDeadlineTimesOutWithoutForward) {
  MicroBatcherConfig config;
  config.max_batch = 1;
  MicroBatcher batcher(config);
  const int64_t timeouts_before = CounterValue("serve.timeouts");
  ServeResult result = batcher.SubmitAndWait(
      WrapServed(TinyServeModel()), prompt::PromptTemplate::kDefault,
      Pair("a", "b"),
      MicroBatcher::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_EQ(result.outcome, RequestOutcome::kTimeout);
  EXPECT_EQ(CounterValue("serve.timeouts"), timeouts_before + 1);
}

TEST(MicroBatcherTest, FullQueueRejectsAsOverloaded) {
  MicroBatcherConfig config;
  config.max_batch = 1;
  config.queue_capacity = 1;
  config.dispatch_cost_us = 100000;  // pin the worker inside a dispatch
  MicroBatcher batcher(config);
  std::shared_ptr<const ServedModel> served = WrapServed(TinyServeModel());

  std::future<ServeResult> first =
      batcher.Submit(served, prompt::PromptTemplate::kDefault, Pair("a", "b"));
  // Wait until the worker has picked up the first request and is busy.
  while (batcher.queue_depth() != 0) {
    std::this_thread::yield();
  }
  std::future<ServeResult> second =
      batcher.Submit(served, prompt::PromptTemplate::kDefault, Pair("c", "d"));
  std::future<ServeResult> third =
      batcher.Submit(served, prompt::PromptTemplate::kDefault, Pair("e", "f"));

  EXPECT_EQ(third.get().outcome, RequestOutcome::kOverloaded);
  EXPECT_EQ(first.get().outcome, RequestOutcome::kOk);
  EXPECT_EQ(second.get().outcome, RequestOutcome::kOk);
}

TEST(MicroBatcherTest, ShutdownDrainsQueuedRequests) {
  MicroBatcherConfig config;
  config.max_batch = 4;
  config.dispatch_cost_us = 20000;  // keep requests queued at Shutdown time
  auto batcher = std::make_unique<MicroBatcher>(config);
  std::shared_ptr<const ServedModel> served = WrapServed(TinyServeModel());

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(batcher->Submit(served, prompt::PromptTemplate::kDefault,
                                      Pair("p" + std::to_string(i), "q")));
  }
  batcher->Shutdown();
  for (auto& future : futures) {
    EXPECT_EQ(future.get().outcome, RequestOutcome::kOk);
  }

  // Post-shutdown submissions are rejected with the typed outcome.
  ServeResult late = batcher->SubmitAndWait(
      served, prompt::PromptTemplate::kDefault, Pair("late", "late"));
  EXPECT_EQ(late.outcome, RequestOutcome::kShutdown);
}

TEST(MicroBatcherTest, CacheHitBypassesQueueAndMatchesOriginal) {
  MicroBatcherConfig config;
  config.cache = std::make_shared<ResultCache>(1 << 20);
  MicroBatcher batcher(config);
  std::shared_ptr<const ServedModel> served = WrapServed(TinyServeModel());

  ServeResult first = batcher.SubmitAndWait(
      served, prompt::PromptTemplate::kDefault, Pair("widget", "widget x"));
  ASSERT_EQ(first.outcome, RequestOutcome::kOk);
  ASSERT_FALSE(first.cache_hit);

  ServeResult second = batcher.SubmitAndWait(
      served, prompt::PromptTemplate::kDefault, Pair("widget", "widget x"));
  ASSERT_EQ(second.outcome, RequestOutcome::kOk);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.decision.probability, first.decision.probability);
  EXPECT_EQ(second.decision.response, first.decision.response);

  // A different model version must miss: versions are part of the key.
  ServeResult other_version = batcher.SubmitAndWait(
      WrapServed(served->model, /*version=*/2),
      prompt::PromptTemplate::kDefault, Pair("widget", "widget x"));
  ASSERT_EQ(other_version.outcome, RequestOutcome::kOk);
  EXPECT_FALSE(other_version.cache_hit);
}

TEST(MicroBatcherTest, RequestOutcomeNamesAreStable) {
  EXPECT_STREQ(RequestOutcomeName(RequestOutcome::kOk), "ok");
  EXPECT_STREQ(RequestOutcomeName(RequestOutcome::kTimeout), "timeout");
  EXPECT_STREQ(RequestOutcomeName(RequestOutcome::kOverloaded), "overloaded");
  EXPECT_STREQ(RequestOutcomeName(RequestOutcome::kShutdown), "shutdown");
  EXPECT_STREQ(RequestOutcomeName(RequestOutcome::kError), "error");
}

}  // namespace
}  // namespace tailormatch::serve
