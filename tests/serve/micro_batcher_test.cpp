#include "serve/micro_batcher.h"

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "obs/metrics.h"
#include "serve/result_cache.h"
#include "serve_test_util.h"

namespace tailormatch::serve {
namespace {

using serve_test::TinyServeModel;
using serve_test::WrapServed;

data::EntityPair Pair(const std::string& left, const std::string& right) {
  return core::MakeSurfacePair(left, right, data::Domain::kProduct);
}

int64_t CounterValue(const char* name) {
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  const int64_t* value = snapshot.FindCounter(name);
  return value == nullptr ? 0 : *value;
}

TEST(MicroBatcherTest, DecisionMatchesDirectMatcher) {
  std::shared_ptr<llm::SimLlm> model = TinyServeModel();
  core::Matcher matcher(model);
  core::MatchDecision direct = matcher.Match("jabra evolve 80", "sram pg 730");

  MicroBatcherConfig config;
  config.batch_parallelism = 2;
  MicroBatcher batcher(config);
  ServeResult result = batcher.SubmitAndWait(
      WrapServed(model), prompt::PromptTemplate::kDefault,
      Pair("jabra evolve 80", "sram pg 730"));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk);
  EXPECT_EQ(result.decision.probability, direct.probability);
  EXPECT_EQ(result.decision.is_match, direct.is_match);
  EXPECT_EQ(result.decision.response, direct.response);
  EXPECT_EQ(result.model_version, 1u);
  EXPECT_FALSE(result.cache_hit);
}

TEST(MicroBatcherTest, NullModelRejectedAsError) {
  MicroBatcher batcher(MicroBatcherConfig{});
  ServeResult result = batcher.SubmitAndWait(
      nullptr, prompt::PromptTemplate::kDefault, Pair("a", "b"));
  EXPECT_EQ(result.outcome, RequestOutcome::kError);
}

TEST(MicroBatcherTest, ConcurrentSubmissionsCoalesceIntoOneBatch) {
  MicroBatcherConfig config;
  config.max_batch = 8;
  config.max_wait_us = 200000;  // plenty to collect a burst on a slow box
  config.batch_parallelism = 1;
  MicroBatcher batcher(config);
  std::shared_ptr<const ServedModel> served = WrapServed(TinyServeModel());

  const int64_t batches_before = CounterValue("serve.batches");
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(batcher.Submit(served, prompt::PromptTemplate::kDefault,
                                     Pair("widget " + std::to_string(i),
                                          "widget " + std::to_string(i))));
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().outcome, RequestOutcome::kOk);
  }
  // The first request opens the batch window; the remaining seven arrive
  // well inside the 200ms window, so one dispatch covers all eight.
  EXPECT_EQ(CounterValue("serve.batches"), batches_before + 1);
}

TEST(MicroBatcherTest, ExpiredDeadlineTimesOutWithoutForward) {
  MicroBatcherConfig config;
  config.max_batch = 1;
  MicroBatcher batcher(config);
  const int64_t timeouts_before = CounterValue("serve.timeouts");
  ServeResult result = batcher.SubmitAndWait(
      WrapServed(TinyServeModel()), prompt::PromptTemplate::kDefault,
      Pair("a", "b"),
      MicroBatcher::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_EQ(result.outcome, RequestOutcome::kTimeout);
  EXPECT_EQ(CounterValue("serve.timeouts"), timeouts_before + 1);
}

TEST(MicroBatcherTest, FullQueueRejectsAsOverloaded) {
  MicroBatcherConfig config;
  config.max_batch = 1;
  config.queue_capacity = 1;
  config.dispatch_cost_us = 100000;  // pin the worker inside a dispatch
  MicroBatcher batcher(config);
  std::shared_ptr<const ServedModel> served = WrapServed(TinyServeModel());

  std::future<ServeResult> first =
      batcher.Submit(served, prompt::PromptTemplate::kDefault, Pair("a", "b"));
  // Wait until the worker has picked up the first request and is busy.
  while (batcher.queue_depth() != 0) {
    std::this_thread::yield();
  }
  std::future<ServeResult> second =
      batcher.Submit(served, prompt::PromptTemplate::kDefault, Pair("c", "d"));
  std::future<ServeResult> third =
      batcher.Submit(served, prompt::PromptTemplate::kDefault, Pair("e", "f"));

  EXPECT_EQ(third.get().outcome, RequestOutcome::kOverloaded);
  EXPECT_EQ(first.get().outcome, RequestOutcome::kOk);
  EXPECT_EQ(second.get().outcome, RequestOutcome::kOk);
}

TEST(MicroBatcherTest, ShutdownDrainsQueuedRequests) {
  MicroBatcherConfig config;
  config.max_batch = 4;
  config.dispatch_cost_us = 20000;  // keep requests queued at Shutdown time
  auto batcher = std::make_unique<MicroBatcher>(config);
  std::shared_ptr<const ServedModel> served = WrapServed(TinyServeModel());

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(batcher->Submit(served, prompt::PromptTemplate::kDefault,
                                      Pair("p" + std::to_string(i), "q")));
  }
  batcher->Shutdown();
  for (auto& future : futures) {
    EXPECT_EQ(future.get().outcome, RequestOutcome::kOk);
  }

  // Post-shutdown submissions are rejected with the typed outcome.
  ServeResult late = batcher->SubmitAndWait(
      served, prompt::PromptTemplate::kDefault, Pair("late", "late"));
  EXPECT_EQ(late.outcome, RequestOutcome::kShutdown);
}

TEST(MicroBatcherTest, CacheHitBypassesQueueAndMatchesOriginal) {
  MicroBatcherConfig config;
  config.cache = std::make_shared<ResultCache>(1 << 20);
  MicroBatcher batcher(config);
  std::shared_ptr<const ServedModel> served = WrapServed(TinyServeModel());

  ServeResult first = batcher.SubmitAndWait(
      served, prompt::PromptTemplate::kDefault, Pair("widget", "widget x"));
  ASSERT_EQ(first.outcome, RequestOutcome::kOk);
  ASSERT_FALSE(first.cache_hit);

  ServeResult second = batcher.SubmitAndWait(
      served, prompt::PromptTemplate::kDefault, Pair("widget", "widget x"));
  ASSERT_EQ(second.outcome, RequestOutcome::kOk);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.decision.probability, first.decision.probability);
  EXPECT_EQ(second.decision.response, first.decision.response);

  // A different model version must miss: versions are part of the key.
  ServeResult other_version = batcher.SubmitAndWait(
      WrapServed(served->model, /*version=*/2),
      prompt::PromptTemplate::kDefault, Pair("widget", "widget x"));
  ASSERT_EQ(other_version.outcome, RequestOutcome::kOk);
  EXPECT_FALSE(other_version.cache_hit);
}

TEST(MicroBatcherTest, RequestOutcomeNamesAreStable) {
  EXPECT_STREQ(RequestOutcomeName(RequestOutcome::kOk), "ok");
  EXPECT_STREQ(RequestOutcomeName(RequestOutcome::kTimeout), "timeout");
  EXPECT_STREQ(RequestOutcomeName(RequestOutcome::kOverloaded), "overloaded");
  EXPECT_STREQ(RequestOutcomeName(RequestOutcome::kShutdown), "shutdown");
  EXPECT_STREQ(RequestOutcomeName(RequestOutcome::kError), "error");
}

// ---------------------------------------------------------------------------
// Reconfiguration edges: the autotuner moves max_batch / max_wait_us on a
// live batcher, so the knobs must be safe to change mid-flight, clamp bad
// values, and interact cleanly with deadlines and shutdown. The racy ones
// run under TSan via check-sanitize.
// ---------------------------------------------------------------------------

TEST(MicroBatcherReconfigureTest, SettersClampHostileValues) {
  MicroBatcher batcher(MicroBatcherConfig{});
  batcher.set_max_batch(0);
  EXPECT_EQ(batcher.max_batch(), 1) << "max_batch floors at 1";
  batcher.set_max_batch(-7);
  EXPECT_EQ(batcher.max_batch(), 1);
  batcher.set_max_wait_us(-5);
  EXPECT_EQ(batcher.max_wait_us(), 0) << "max_wait_us floors at 0";
  batcher.set_max_batch(4096);
  EXPECT_EQ(batcher.max_batch(), 4096);
}

TEST(MicroBatcherReconfigureTest, KnobsChangedMidFlightUnderLoad) {
  MicroBatcherConfig config;
  config.max_batch = 1;
  config.max_wait_us = 0;
  config.dispatch_cost_us = 100;
  config.queue_capacity = 4096;
  config.batch_parallelism = 2;
  MicroBatcher batcher(config);
  std::shared_ptr<const ServedModel> served = WrapServed(TinyServeModel());

  // Submitters flood while a tuner thread thrashes both knobs through their
  // full range. Every request must resolve kOk — reconfiguration may change
  // batch shapes but never lose or corrupt a request.
  std::atomic<bool> done{false};
  std::thread tuner([&] {
    int step = 0;
    while (!done.load()) {
      batcher.set_max_batch(1 << (step % 7));        // 1..64
      batcher.set_max_wait_us(50 * (step % 5));      // 0..200us
      ++step;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> submitters;
  std::atomic<int> ok_count{0};
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        ServeResult result = batcher.SubmitAndWait(
            served, prompt::PromptTemplate::kDefault,
            Pair("s" + std::to_string(t) + "-" + std::to_string(i), "q"));
        if (result.outcome == RequestOutcome::kOk) ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  done.store(true);
  tuner.join();
  EXPECT_EQ(ok_count.load(), 400);
}

TEST(MicroBatcherReconfigureTest, DeadlineExpiryRacesDispatchWithoutLoss) {
  MicroBatcherConfig config;
  config.max_batch = 2;
  config.max_wait_us = 100;
  config.dispatch_cost_us = 500;
  MicroBatcher batcher(config);
  std::shared_ptr<const ServedModel> served = WrapServed(TinyServeModel());

  // Deadlines chosen right around the dispatch latency: each request must
  // resolve to exactly one typed outcome (kOk or kTimeout), never hang.
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(batcher.Submit(
        served, prompt::PromptTemplate::kDefault,
        Pair("r" + std::to_string(i), "q"),
        MicroBatcher::Clock::now() + std::chrono::microseconds(200 + i * 37)));
  }
  int ok = 0, timeout = 0;
  for (std::future<ServeResult>& future : futures) {
    const ServeResult result = future.get();
    ASSERT_TRUE(result.outcome == RequestOutcome::kOk ||
                result.outcome == RequestOutcome::kTimeout)
        << RequestOutcomeName(result.outcome);
    (result.outcome == RequestOutcome::kOk) ? ++ok : ++timeout;
  }
  EXPECT_EQ(ok + timeout, 64);
}

TEST(MicroBatcherReconfigureTest, DrainDuringReconfigureResolvesEverything) {
  MicroBatcherConfig config;
  config.max_batch = 4;
  config.dispatch_cost_us = 5000;  // keep a queue alive at Shutdown time
  auto batcher = std::make_unique<MicroBatcher>(config);
  std::shared_ptr<const ServedModel> served = WrapServed(TinyServeModel());

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(batcher->Submit(served, prompt::PromptTemplate::kDefault,
                                      Pair("d" + std::to_string(i), "q")));
  }
  // Reconfigure concurrently with the drain: the worker may sample either
  // knob value; it must not deadlock or drop queued requests.
  std::thread tuner([&] {
    for (int i = 0; i < 50; ++i) {
      batcher->set_max_batch(i % 2 == 0 ? 1 : 16);
      batcher->set_max_wait_us(i % 2 == 0 ? 0 : 500);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  batcher->Shutdown();
  tuner.join();
  for (std::future<ServeResult>& future : futures) {
    EXPECT_EQ(future.get().outcome, RequestOutcome::kOk);
  }
}

}  // namespace
}  // namespace tailormatch::serve
