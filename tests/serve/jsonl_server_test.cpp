#include "serve/jsonl_server.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "serve/net_util.h"
#include "serve_test_util.h"
#include "util/json.h"
#include "util/string_util.h"

namespace tailormatch::serve {
namespace {

class JsonlServerTest : public ::testing::Test {
 protected:
  JsonlServerTest() : batcher_(BatcherConfig()) {
    EXPECT_TRUE(
        registry_.RegisterModel("default", serve_test::TinyServeModel()).ok());
  }

  static MicroBatcherConfig BatcherConfig() {
    MicroBatcherConfig config;
    config.max_batch = 4;
    config.max_wait_us = 100;
    config.batch_parallelism = 1;
    return config;
  }

  JsonlServer MakeServer(JsonlServerConfig config = {}) {
    return JsonlServer(&registry_, &batcher_, config);
  }

  ModelRegistry registry_;
  MicroBatcher batcher_;
};

TEST_F(JsonlServerTest, MatchLineProducesOkResponse) {
  JsonlServer server = MakeServer();
  const std::string response = server.HandleLine(
      R"({"id":"42","left":"jabra evolve 80","right":"jabra evolve 80 stereo"})");
  EXPECT_NE(response.find("\"id\":\"42\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(response.find("\"probability\":"), std::string::npos);
  EXPECT_NE(response.find("\"version\":1"), std::string::npos);
  EXPECT_NE(response.find("\"model\":\"default\""), std::string::npos);
}

TEST_F(JsonlServerTest, MalformedAndIncompleteLinesReportErrors) {
  JsonlServer server = MakeServer();
  EXPECT_NE(server.HandleLine("not json").find("\"outcome\":\"error\""),
            std::string::npos);
  EXPECT_NE(server.HandleLine(R"({"id":"1","left":"only one side"})")
                .find("\"outcome\":\"error\""),
            std::string::npos);
  EXPECT_NE(server.HandleLine(R"({"left":"a","right":"b","model":"ghost"})")
                .find("unknown model"),
            std::string::npos);
  EXPECT_NE(
      server.HandleLine(R"({"left":"a","right":"b","prompt":"bogus"})")
          .find("unknown prompt"),
      std::string::npos);
  EXPECT_NE(
      server.HandleLine(R"({"left":"a","right":"b","domain":"bogus"})")
          .find("unknown domain"),
      std::string::npos);
}

TEST_F(JsonlServerTest, ControlOpsPingModelsStats) {
  JsonlServer server = MakeServer();
  EXPECT_EQ(server.HandleLine(R"({"op":"ping"})"), "{\"op\":\"pong\"}");

  const std::string models = server.HandleLine(R"({"op":"models"})");
  EXPECT_NE(models.find("\"model\":\"default\""), std::string::npos);
  EXPECT_NE(models.find("\"version\":1"), std::string::npos);

  // Serve one request so the stats counters exist.
  server.HandleLine(R"({"left":"a","right":"b"})");
  const std::string stats = server.HandleLine(R"({"op":"stats"})");
  EXPECT_NE(stats.find("\"op\":\"stats\""), std::string::npos);
  EXPECT_NE(stats.find("\"serve_requests\":"), std::string::npos);

  EXPECT_NE(server.HandleLine(R"({"op":"frobnicate"})").find("unknown op"),
            std::string::npos);
}

TEST_F(JsonlServerTest, ReloadSwapsVersionAndCorruptReloadKeepsServing) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tm_jsonl_reload").string();
  std::filesystem::create_directories(dir);
  const std::string ckpt = dir + "/v2.ckpt";
  ASSERT_TRUE(serve_test::WriteTinyCheckpoint(ckpt, 77).ok());

  JsonlServer server = MakeServer();
  const std::string reloaded = server.HandleLine(
      R"({"op":"reload","model":"default","path":")" + ckpt + "\"}");
  EXPECT_NE(reloaded.find("\"outcome\":\"ok\""), std::string::npos) << reloaded;
  EXPECT_NE(reloaded.find("\"version\":2"), std::string::npos);

  const std::string bad = server.HandleLine(
      R"({"op":"reload","model":"default","path":"/nonexistent.ckpt"})");
  EXPECT_NE(bad.find("\"outcome\":\"error\""), std::string::npos);
  // Still serving version 2 after the failed reload.
  const std::string response =
      server.HandleLine(R"({"left":"a","right":"b"})");
  EXPECT_NE(response.find("\"version\":2"), std::string::npos);

  JsonlServerConfig frozen;
  frozen.allow_reload = false;
  JsonlServer no_reload = MakeServer(frozen);
  EXPECT_NE(no_reload
                .HandleLine(R"({"op":"reload","model":"default","path":")" +
                            ckpt + "\"}")
                .find("reload disabled"),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST_F(JsonlServerTest, StatsReportsWindowedLatencyAndSloCounters) {
  JsonlServer server = MakeServer();
  server.HandleLine(R"({"left":"a","right":"b"})");
  const std::string stats = server.HandleLine(R"({"op":"stats"})");

  // The whole stats line stays within the flat-JSON serving grammar.
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(json::ParseFlatObject(stats, &fields).ok()) << stats;

  // SLO breach counters exist (at zero: no budgets configured here).
  for (const char* key : {"serve_slo_evaluations", "serve_slo_p99_breaches",
                          "serve_slo_error_breaches"}) {
    EXPECT_EQ(fields.count(key), 1u) << key << " missing in " << stats;
  }
  // Rolling 1s/10s/60s latency windows with percentiles, plus the EWMA rate.
  for (const char* key :
       {"latency_rate_ewma", "latency_ms_w1s_count", "latency_ms_w10s_count",
        "latency_ms_w10s_p50", "latency_ms_w10s_p95", "latency_ms_w10s_p99",
        "latency_ms_w60s_count"}) {
    EXPECT_EQ(fields.count(key), 1u) << key << " missing in " << stats;
  }
  // The request just served is inside the 60s window.
  EXPECT_NE(fields["latency_ms_w60s_count"], "0");
}

TEST_F(JsonlServerTest, TraceOpWritesParseableChromeTrace) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable();
  JsonlServer server = MakeServer();

  const std::string match = server.HandleLine(
      R"({"left":"jabra evolve 80","right":"jabra evolve 80 stereo"})");
  // With tracing on, the reply echoes the request's trace id.
  EXPECT_NE(match.find("\"trace_id\":"), std::string::npos) << match;

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("tm_jsonl_trace_" + std::to_string(::getpid()) + ".json"))
          .string();
  const std::string response = server.HandleLine(
      "{\"op\":\"trace\",\"path\":" + json::Quote(path) + "}");
  recorder.Disable();
  recorder.Clear();
  EXPECT_NE(response.find("\"outcome\":\"ok\""), std::string::npos)
      << response;
  EXPECT_EQ(response.find("\"events\":0"), std::string::npos)
      << "trace export should contain the served request: " << response;

  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::filesystem::remove(path);
  EXPECT_EQ(contents.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(contents.find("\"ph\":\"b\""), std::string::npos)
      << "request lifeline missing";
}

TEST_F(JsonlServerTest, TraceOpRequiresTracingAndAPath) {
  JsonlServer server = MakeServer();
  obs::TraceRecorder::Global().Disable();
  EXPECT_NE(server.HandleLine(R"({"op":"trace","path":"/tmp/x.json"})")
                .find("tracing is disabled"),
            std::string::npos);
  obs::TraceRecorder::Global().Enable();
  // The quotes around "path" arrive JSON-escaped, so match around them.
  EXPECT_NE(server.HandleLine(R"({"op":"trace"})").find("trace needs a"),
            std::string::npos);
  obs::TraceRecorder::Global().Disable();
}

TEST_F(JsonlServerTest, ServeStreamAnswersEveryLineInOrder) {
  JsonlServer server = MakeServer();
  std::istringstream in(
      R"({"id":"a","left":"jabra evolve 80","right":"jabra evolve 80 stereo"})"
      "\n"
      R"({"id":"b","left":"widget pro","right":"widget pro x"})"
      "\nnot json\n"
      R"({"op":"ping"})"
      "\n"
      R"({"id":"c","left":"acme anvil","right":"acme anvil iii"})"
      "\n");
  std::ostringstream out;
  server.ServeStream(in, out);

  const std::vector<std::string> lines = Split(out.str(), '\n');
  ASSERT_GE(lines.size(), 5u) << out.str();
  EXPECT_NE(lines[0].find("\"id\":\"a\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"id\":\"b\""), std::string::npos) << lines[1];
  EXPECT_NE(lines[2].find("\"outcome\":\"error\""), std::string::npos);
  EXPECT_NE(lines[3].find("pong"), std::string::npos);
  EXPECT_NE(lines[4].find("\"id\":\"c\""), std::string::npos);
}

TEST_F(JsonlServerTest, ServeStreamQuitStopsEarly) {
  JsonlServer server = MakeServer();
  std::istringstream in(R"({"op":"quit"})"
                        "\n"
                        R"({"id":"never","left":"a","right":"b"})"
                        "\n");
  std::ostringstream out;
  server.ServeStream(in, out);
  EXPECT_NE(out.str().find("\"op\":\"quit\""), std::string::npos);
  EXPECT_EQ(out.str().find("never"), std::string::npos)
      << "lines after quit must not be served";
}

TEST_F(JsonlServerTest, PipelinedRequestsKeepRequestOrder) {
  JsonlServer server = MakeServer();
  std::string input;
  for (int i = 0; i < 20; ++i) {
    input += "{\"id\":\"" + std::to_string(i) + "\",\"left\":\"widget " +
             std::to_string(i) + "\",\"right\":\"widget " +
             std::to_string(i + 1) + "\"}\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  server.ServeStream(in, out);
  const std::vector<std::string> lines = Split(out.str(), '\n');
  ASSERT_GE(lines.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(lines[i].find("\"id\":\"" + std::to_string(i) + "\""),
              std::string::npos)
        << "line " << i << ": " << lines[i];
  }
}

// ---------------------------------------------------------------------------
// Protocol torture: the server is fed hostile framing — oversized lines,
// dribbled TCP reads, unknown ops, mixed pipelined streams — and must answer
// every line with well-formed JSON in request order without dying.
// ---------------------------------------------------------------------------

TEST_F(JsonlServerTest, OversizedLineIsRejectedAndTheStreamSurvives) {
  JsonlServerConfig config;
  config.max_line_bytes = 256;
  JsonlServer server = MakeServer(config);
  std::istringstream in("{\"id\":\"before\",\"left\":\"a\",\"right\":\"b\"}\n" +
                        std::string(1024, 'x') + "\n" +
                        "{\"id\":\"pad\",\"left\":\"" + std::string(512, 'y') +
                        "\",\"right\":\"b\"}\n"
                        "{\"id\":\"after\",\"left\":\"a\",\"right\":\"b\"}\n");
  std::ostringstream out;
  server.ServeStream(in, out);
  const std::vector<std::string> lines = Split(out.str(), '\n');
  ASSERT_GE(lines.size(), 4u) << out.str();
  EXPECT_NE(lines[0].find("\"id\":\"before\""), std::string::npos);
  EXPECT_NE(lines[1].find("exceeds limit"), std::string::npos) << lines[1];
  EXPECT_NE(lines[2].find("exceeds limit"), std::string::npos)
      << "a valid-JSON line over the limit must still be refused: "
      << lines[2];
  EXPECT_NE(lines[3].find("\"id\":\"after\""), std::string::npos)
      << "the connection must keep serving after an oversized line";
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    std::map<std::string, std::string> fields;
    EXPECT_TRUE(json::ParseFlatObject(line, &fields).ok()) << line;
  }
}

TEST_F(JsonlServerTest, ZeroMaxLineBytesDisablesTheGuard) {
  JsonlServerConfig config;
  config.max_line_bytes = 0;
  JsonlServer server = MakeServer(config);
  const std::string big_left = std::string(1 << 16, 'z');
  const std::string response = server.HandleLine(
      "{\"id\":\"big\",\"left\":\"" + big_left + "\",\"right\":\"b\"}");
  EXPECT_NE(response.find("\"outcome\":\"ok\""), std::string::npos);
}

TEST_F(JsonlServerTest, DribbledTcpBytesAssembleIntoWholeRequests) {
  JsonlServer server = MakeServer();
  std::atomic<int> port{0};
  std::thread serving([&] { server.ServeTcp(0, &port); });
  while (port.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const int fd = TcpConnectLoopback(port.load());
  ASSERT_GE(fd, 0);
  // Two pipelined requests written one byte at a time across many TCP
  // segments: framing is the newline, not the segment boundary.
  const std::string payload =
      "{\"id\":\"d1\",\"left\":\"jabra evolve 80\",\"right\":\"jabra evolve "
      "80 stereo\"}\n"
      "{\"id\":\"d2\",\"left\":\"acme anvil\",\"right\":\"acme anvil "
      "iii\"}\n";
  for (size_t i = 0; i < payload.size(); ++i) {
    ASSERT_EQ(::write(fd, payload.data() + i, 1), 1);
    if (i % 16 == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  FdStreamBuf buf(fd);
  std::istream in(&buf);
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  EXPECT_NE(line.find("\"id\":\"d1\""), std::string::npos) << line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  EXPECT_NE(line.find("\"id\":\"d2\""), std::string::npos) << line;
  ::close(fd);
  server.Stop();
  serving.join();
}

TEST_F(JsonlServerTest, InterleavedTcpClientsGetTheirOwnAnswers) {
  JsonlServer server = MakeServer();
  std::atomic<int> port{0};
  std::thread serving([&] { server.ServeTcp(0, &port); });
  while (port.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Two concurrent connections, each sending a tagged burst; every client
  // must get exactly its own ids back, in its own order.
  auto client = [&](const std::string& tag) {
    const int fd = TcpConnectLoopback(port.load());
    ASSERT_GE(fd, 0);
    FdStreamBuf buf(fd);
    std::istream in(&buf);
    std::ostream out(&buf);
    for (int i = 0; i < 10; ++i) {
      out << "{\"id\":\"" << tag << i << "\",\"left\":\"widget " << tag << i
          << "\",\"right\":\"widget " << tag << i << " x\"}\n";
      out.flush();
      if (i % 3 == 0) std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    for (int i = 0; i < 10; ++i) {
      std::string line;
      ASSERT_TRUE(static_cast<bool>(std::getline(in, line))) << tag << i;
      EXPECT_NE(line.find("\"id\":\"" + tag + std::to_string(i) + "\""),
                std::string::npos)
          << line;
    }
    ::close(fd);
  };
  std::thread a([&] { client("a"); });
  std::thread b([&] { client("b"); });
  a.join();
  b.join();
  server.Stop();
  serving.join();
}

TEST_F(JsonlServerTest, MixedPipelinedStreamKeepsOrderAcrossOpKinds) {
  JsonlServer server = MakeServer();
  // Control ops act as pipeline barriers: every response still lands in
  // request order even when matches, errors, and ops interleave.
  std::istringstream in(
      R"({"id":"m0","left":"widget","right":"widget x"})"
      "\n"
      R"({"op":"ping"})"
      "\n"
      R"({"id":"m1","left":"acme anvil","right":"acme anvil iii"})"
      "\n"
      R"({"op":"frobnicate"})"
      "\nnot json\n"
      R"({"op":"stats"})"
      "\n"
      R"({"id":"m2","left":"gadget","right":"gadget b"})"
      "\n");
  std::ostringstream out;
  server.ServeStream(in, out);
  const std::vector<std::string> lines = Split(out.str(), '\n');
  ASSERT_GE(lines.size(), 7u) << out.str();
  EXPECT_NE(lines[0].find("\"id\":\"m0\""), std::string::npos);
  EXPECT_NE(lines[1].find("pong"), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\":\"m1\""), std::string::npos);
  EXPECT_NE(lines[3].find("unknown op"), std::string::npos);
  EXPECT_NE(lines[4].find("\"outcome\":\"error\""), std::string::npos);
  EXPECT_NE(lines[5].find("\"op\":\"stats\""), std::string::npos);
  EXPECT_NE(lines[6].find("\"id\":\"m2\""), std::string::npos);
}

}  // namespace
}  // namespace tailormatch::serve
