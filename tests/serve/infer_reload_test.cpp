#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "llm/infer_engine.h"
#include "llm/sim_llm.h"
#include "serve/model_registry.h"
#include "serve_test_util.h"

// Satellite: prefix-cache correctness under ModelRegistry::Reload. A reload
// swaps in a fresh SimLlm instance — and with it a fresh, empty InferEngine
// — so planned-executor state (plans + prefix cache) can never be served
// against the wrong weights. Readers hammering Get()+Predict across a
// mid-traffic hot swap must only ever observe bitwise v1 or bitwise v2
// probabilities, never a stale-version mixture.

namespace tailormatch::serve {
namespace {

class InferReloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tm_infer_reload_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    v1_path_ = (dir_ / "v1.ckpt").string();
    v2_path_ = (dir_ / "v2.ckpt").string();
    ASSERT_TRUE(serve_test::WriteTinyCheckpoint(v1_path_, /*seed=*/11).ok());
    ASSERT_TRUE(serve_test::WriteTinyCheckpoint(v2_path_, /*seed=*/29).ok());
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  std::string v1_path_;
  std::string v2_path_;
};

std::vector<std::string> ReloadPrompts() {
  return {
      "Do the two entity descriptions refer to the same real-world product? "
      "Entity 1: jabra evolve 80 Entity 2: sram pg 730",
      "Do the two entity descriptions refer to the same real-world product? "
      "Entity 1: widget pro model Entity 2: widget pro model x",
  };
}

// Ground truth from standalone instances loaded off the same checkpoints:
// the registry-served planned path must reproduce these bits exactly.
std::vector<double> ExpectedProbabilities(const std::string& path) {
  auto loaded = llm::SimLlm::LoadCheckpoint(path);
  EXPECT_TRUE(loaded.ok());
  std::vector<double> out;
  for (const std::string& prompt : ReloadPrompts()) {
    out.push_back(loaded.value()->PredictMatchProbability(prompt));
  }
  return out;
}

TEST_F(InferReloadTest, ReloadSwapsToFreshEngineState) {
  llm::InferExecutorModeScope mode(llm::InferExecutorMode::kPlanned);
  const std::vector<double> v1 = ExpectedProbabilities(v1_path_);
  const std::vector<double> v2 = ExpectedProbabilities(v2_path_);
  // Distinguishable versions — otherwise the test can't detect staleness.
  ASSERT_NE(v1[0], v2[0]);

  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("scorer", v1_path_).ok());
  const std::vector<std::string> prompts = ReloadPrompts();

  // Warm v1's plans and prefix cache through repeated traffic.
  auto served_v1 = registry.Get("scorer");
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (size_t i = 0; i < prompts.size(); ++i) {
      EXPECT_EQ(served_v1->model->PredictMatchProbability(prompts[i]), v1[i]);
    }
  }
  EXPECT_GT(served_v1->model->infer_engine().plan_count(), 0);

  // Hot swap. The new instance must serve v2 bits immediately — its engine
  // starts empty, so no v1 plan or prefix entry can leak across.
  ASSERT_TRUE(registry.Reload("scorer", v2_path_).ok());
  auto served_v2 = registry.Get("scorer");
  EXPECT_EQ(served_v2->version, 2u);
  EXPECT_EQ(served_v2->model->infer_engine().plan_count(), 0);
  for (size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(served_v2->model->PredictMatchProbability(prompts[i]), v2[i]);
  }

  // The retained v1 snapshot keeps serving v1 bits from its own engine.
  for (size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(served_v1->model->PredictMatchProbability(prompts[i]), v1[i]);
  }
}

TEST_F(InferReloadTest, MidTrafficReloadNeverServesStaleVersionLogits) {
  llm::InferExecutorModeScope mode(llm::InferExecutorMode::kPlanned);
  const std::vector<double> v1 = ExpectedProbabilities(v1_path_);
  const std::vector<double> v2 = ExpectedProbabilities(v2_path_);
  ASSERT_NE(v1[0], v2[0]);
  ASSERT_NE(v1[1], v2[1]);

  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("scorer", v1_path_).ok());
  const std::vector<std::string> prompts = ReloadPrompts();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> scored{0};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      llm::InferExecutorModeScope reader_mode(llm::InferExecutorMode::kPlanned);
      size_t i = static_cast<size_t>(t) % prompts.size();
      while (!stop.load(std::memory_order_relaxed)) {
        auto served = registry.Get("scorer");
        const double p = served->model->PredictMatchProbability(prompts[i]);
        // Every response must be bitwise one of the two versions.
        if (p != v1[i] && p != v2[i]) bad.fetch_add(1);
        scored.fetch_add(1);
        i = (i + 1) % prompts.size();
      }
    });
  }
  // Repeated hot swaps under live planned-executor traffic.
  for (int swap = 0; swap < 6; ++swap) {
    ASSERT_TRUE(
        registry.Reload("scorer", swap % 2 == 0 ? v2_path_ : v1_path_).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(bad.load(), 0) << "a response matched neither v1 nor v2 bits";
  EXPECT_GT(scored.load(), 0);
  // Post-reload steady state: the last swap (index 5, odd) published
  // v1_path_, so the registry must serve exactly v1 bits.
  auto final_served = registry.Get("scorer");
  for (size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(final_served->model->PredictMatchProbability(prompts[i]), v1[i]);
  }
}

}  // namespace
}  // namespace tailormatch::serve
