// Satellite of DESIGN.md §5b determinism: serving must not change answers.
// The same pairs are scored one-at-a-time (core::Matcher), through the
// offline BatchMatcher, and through serving micro-batches of several sizes
// and compositions — every path must produce bitwise-identical decisions.

#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_matcher.h"
#include "core/matcher.h"
#include "obs/trace.h"
#include "serve/micro_batcher.h"
#include "serve_test_util.h"

namespace tailormatch::serve {
namespace {

std::vector<data::EntityPair> TestPairs() {
  std::vector<data::EntityPair> pairs;
  const char* surfaces[] = {
      "jabra evolve 80",  "jabra evolve 80 stereo", "sram pg 730",
      "widget pro model", "widget pro model x",     "acme anvil 3",
      "acme anvil iii",   "nothing like the rest",
  };
  for (const char* left : surfaces) {
    for (const char* right : {surfaces[1], surfaces[4]}) {
      pairs.push_back(
          core::MakeSurfacePair(left, right, data::Domain::kProduct));
    }
  }
  return pairs;  // 16 pairs
}

std::vector<core::MatchDecision> ViaMicroBatcher(
    const std::shared_ptr<const ServedModel>& served,
    const std::vector<data::EntityPair>& pairs, int max_batch,
    int batch_parallelism) {
  MicroBatcherConfig config;
  config.max_batch = max_batch;
  config.max_wait_us = 1000;
  config.batch_parallelism = batch_parallelism;
  MicroBatcher batcher(config);
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(pairs.size());
  for (const data::EntityPair& pair : pairs) {
    futures.push_back(
        batcher.Submit(served, prompt::PromptTemplate::kDefault, pair));
  }
  std::vector<core::MatchDecision> decisions;
  decisions.reserve(pairs.size());
  for (auto& future : futures) {
    ServeResult result = future.get();
    EXPECT_EQ(result.outcome, RequestOutcome::kOk);
    decisions.push_back(std::move(result.decision));
  }
  return decisions;
}

void ExpectBitwiseEqual(const std::vector<core::MatchDecision>& expected,
                        const std::vector<core::MatchDecision>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    // EXPECT_EQ on doubles is exact on purpose: the contract is bitwise
    // identity, not approximate agreement.
    EXPECT_EQ(expected[i].probability, actual[i].probability)
        << label << " pair " << i;
    EXPECT_EQ(expected[i].is_match, actual[i].is_match) << label << " " << i;
    EXPECT_EQ(expected[i].response, actual[i].response) << label << " " << i;
    EXPECT_EQ(expected[i].parseable, actual[i].parseable) << label << " " << i;
  }
}

TEST(BatchingDeterminismTest, AllInferencePathsAgreeBitwise) {
  std::shared_ptr<llm::SimLlm> model = serve_test::TinyServeModel();
  const std::vector<data::EntityPair> pairs = TestPairs();

  core::Matcher matcher(model);
  std::vector<core::MatchDecision> alone;
  alone.reserve(pairs.size());
  for (const data::EntityPair& pair : pairs) {
    alone.push_back(matcher.Match(pair));
  }

  for (int threads : {1, 3}) {
    core::BatchMatcher batch_matcher(model, prompt::PromptTemplate::kDefault,
                                     threads);
    ExpectBitwiseEqual(alone, batch_matcher.MatchAll(pairs),
                       "BatchMatcher threads=" + std::to_string(threads));
  }

  std::shared_ptr<const ServedModel> served = serve_test::WrapServed(model);
  for (int max_batch : {1, 3, 8}) {
    for (int parallelism : {1, 2}) {
      ExpectBitwiseEqual(
          alone, ViaMicroBatcher(served, pairs, max_batch, parallelism),
          "MicroBatcher max_batch=" + std::to_string(max_batch) +
              " parallelism=" + std::to_string(parallelism));
    }
  }
}

TEST(BatchingDeterminismTest, BatchCompositionDoesNotLeakAcrossRequests) {
  std::shared_ptr<llm::SimLlm> model = serve_test::TinyServeModel();
  std::shared_ptr<const ServedModel> served = serve_test::WrapServed(model);
  core::Matcher matcher(model);

  const data::EntityPair probe = core::MakeSurfacePair(
      "jabra evolve 80", "jabra evolve 80 stereo", data::Domain::kProduct);
  const core::MatchDecision direct = matcher.Match(probe);

  // Score the probe surrounded by different neighbor sets: its decision must
  // not depend on what else happened to share the micro-batch.
  for (int neighbors : {0, 2, 7}) {
    std::vector<data::EntityPair> pairs;
    for (int i = 0; i < neighbors; ++i) {
      pairs.push_back(core::MakeSurfacePair("filler " + std::to_string(i),
                                            "filler " + std::to_string(i + 1),
                                            data::Domain::kProduct));
    }
    pairs.push_back(probe);
    std::vector<core::MatchDecision> decisions =
        ViaMicroBatcher(served, pairs, /*max_batch=*/8,
                        /*batch_parallelism=*/2);
    const core::MatchDecision& probed = decisions.back();
    EXPECT_EQ(probed.probability, direct.probability)
        << "with " << neighbors << " neighbors";
    EXPECT_EQ(probed.response, direct.response);
  }
}

// Runs `pairs` through a fresh MicroBatcher with each request submitted
// under an explicit ambient trace id (base + index), then returns the
// per-request event-kind sequences keyed by index. Collect() is exact here:
// the batcher is shut down (workers joined) before events are read.
std::vector<std::vector<obs::TraceEventKind>> TraceSequences(
    const std::shared_ptr<const ServedModel>& served,
    const std::vector<data::EntityPair>& pairs, int max_batch) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Clear();
  // Well above the dense NewTraceId counter: explicit ids cannot collide
  // with the batch ids the workers allocate for batch-scoped events.
  const uint64_t base = uint64_t{1} << 40;

  MicroBatcherConfig config;
  config.max_batch = max_batch;
  config.max_wait_us = 1000;
  config.batch_parallelism = 1;
  MicroBatcher batcher(config);
  std::vector<std::future<ServeResult>> futures;
  for (size_t i = 0; i < pairs.size(); ++i) {
    obs::TraceScope scope(base + i);
    futures.push_back(
        batcher.Submit(served, prompt::PromptTemplate::kDefault, pairs[i]));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const ServeResult result = futures[i].get();
    EXPECT_EQ(result.outcome, RequestOutcome::kOk);
    // The reply carries the ambient id it was traced under.
    EXPECT_EQ(result.trace_id, base + i);
  }
  batcher.Shutdown();

  std::vector<std::vector<obs::TraceEventKind>> sequences(pairs.size());
  for (const obs::TraceEvent& event : recorder.Collect()) {
    if (event.trace_id >= base && event.trace_id < base + pairs.size()) {
      sequences[event.trace_id - base].push_back(event.kind);
    }
  }
  recorder.Clear();
  return sequences;
}

// DESIGN.md §5f: per-request trace-event *sequences* are part of the
// determinism contract. Batch composition may only show up in batch-scoped
// events (batch_form/forward, recorded under a separate batch id), so the
// same request stream must produce identical per-request sequences whether
// requests are dispatched one at a time or coalesced eight at a time.
TEST(BatchingDeterminismTest, TraceSequencePerRequestIsBatchInvariant) {
  std::shared_ptr<llm::SimLlm> model = serve_test::TinyServeModel();
  std::shared_ptr<const ServedModel> served = serve_test::WrapServed(model);
  const std::vector<data::EntityPair> pairs = TestPairs();

  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Enable();
  const auto unbatched = TraceSequences(served, pairs, /*max_batch=*/1);
  const auto batched = TraceSequences(served, pairs, /*max_batch=*/8);
  recorder.Disable();

  ASSERT_EQ(unbatched.size(), batched.size());
  for (size_t i = 0; i < unbatched.size(); ++i) {
    // Every request walks enqueue -> dispatch -> reply, regardless of how
    // the micro-batches were cut.
    const std::vector<obs::TraceEventKind> expected = {
        obs::TraceEventKind::kEnqueue, obs::TraceEventKind::kDispatch,
        obs::TraceEventKind::kReply};
    EXPECT_EQ(unbatched[i], expected) << "request " << i << " (unbatched)";
    EXPECT_EQ(batched[i], expected) << "request " << i << " (batched)";
  }
}

}  // namespace
}  // namespace tailormatch::serve
