#include "serve/model_registry.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve_test_util.h"

namespace tailormatch::serve {
namespace {

class ModelRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tm_registry_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(ModelRegistryTest, RegisterFromCheckpointServesVersionOne) {
  ASSERT_TRUE(serve_test::WriteTinyCheckpoint(Path("m.ckpt"), 11).ok());
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("prod", Path("m.ckpt")).ok());
  std::shared_ptr<const ServedModel> served = registry.Get("prod");
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->name, "prod");
  EXPECT_EQ(served->version, 1u);
  EXPECT_EQ(served->source, Path("m.ckpt"));
  EXPECT_GT(served->model->PredictMatchProbability("entity 1: a entity 2: b"),
            0.0);
  EXPECT_EQ(registry.Get("nope"), nullptr);
}

TEST_F(ModelRegistryTest, DuplicateNameRejected) {
  ModelRegistry registry;
  ASSERT_TRUE(
      registry.RegisterModel("m", serve_test::TinyServeModel()).ok());
  Status duplicate = registry.RegisterModel("m", serve_test::TinyServeModel());
  EXPECT_FALSE(duplicate.ok());
  EXPECT_EQ(registry.Names().size(), 1u);
}

TEST_F(ModelRegistryTest, InMemoryModelCannotPathlessReload) {
  ModelRegistry registry;
  ASSERT_TRUE(
      registry.RegisterModel("m", serve_test::TinyServeModel()).ok());
  EXPECT_FALSE(registry.Reload("m").ok());
  EXPECT_EQ(registry.Get("m")->version, 1u);
}

TEST_F(ModelRegistryTest, ReloadBumpsVersionAndOldSnapshotStaysUsable) {
  ASSERT_TRUE(serve_test::WriteTinyCheckpoint(Path("v1.ckpt"), 11).ok());
  ASSERT_TRUE(serve_test::WriteTinyCheckpoint(Path("v2.ckpt"), 77).ok());
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", Path("v1.ckpt")).ok());
  std::shared_ptr<const ServedModel> old_snapshot = registry.Get("m");
  const std::string probe = "entity 1: widget pro entity 2: widget pro x";
  const double old_probability =
      old_snapshot->model->PredictMatchProbability(probe);

  ASSERT_TRUE(registry.Reload("m", Path("v2.ckpt")).ok());
  std::shared_ptr<const ServedModel> fresh = registry.Get("m");
  EXPECT_EQ(fresh->version, 2u);
  EXPECT_EQ(fresh->source, Path("v2.ckpt"));
  // Different init seed -> different weights -> different prediction.
  EXPECT_NE(fresh->model->PredictMatchProbability(probe), old_probability);
  // The pinned pre-reload snapshot keeps working, bit-for-bit.
  EXPECT_EQ(old_snapshot->version, 1u);
  EXPECT_DOUBLE_EQ(old_snapshot->model->PredictMatchProbability(probe),
                   old_probability);
}

TEST_F(ModelRegistryTest, PathlessReloadUsesRecordedSource) {
  ASSERT_TRUE(serve_test::WriteTinyCheckpoint(Path("m.ckpt"), 11).ok());
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", Path("m.ckpt")).ok());
  ASSERT_TRUE(serve_test::WriteTinyCheckpoint(Path("m.ckpt"), 77).ok());
  ASSERT_TRUE(registry.Reload("m").ok());
  EXPECT_EQ(registry.Get("m")->version, 2u);
}

TEST_F(ModelRegistryTest, CorruptReloadKeepsPreviousVersionLive) {
  ASSERT_TRUE(serve_test::WriteTinyCheckpoint(Path("good.ckpt"), 11).ok());
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", Path("good.ckpt")).ok());
  const double before = registry.Get("m")->model->PredictMatchProbability(
      "entity 1: a entity 2: b");

  {
    std::ofstream garbage(Path("garbage.ckpt"), std::ios::binary);
    garbage << "this is not a framed checkpoint";
  }
  EXPECT_FALSE(registry.Reload("m", Path("garbage.ckpt")).ok());

  // Truncation: flip a valid checkpoint into a torn one.
  ASSERT_TRUE(serve_test::WriteTinyCheckpoint(Path("torn.ckpt"), 77).ok());
  const auto full_size = std::filesystem::file_size(Path("torn.ckpt"));
  std::filesystem::resize_file(Path("torn.ckpt"), full_size / 2);
  EXPECT_FALSE(registry.Reload("m", Path("torn.ckpt")).ok());

  EXPECT_FALSE(registry.Reload("m", Path("missing.ckpt")).ok());

  std::shared_ptr<const ServedModel> served = registry.Get("m");
  EXPECT_EQ(served->version, 1u);
  EXPECT_DOUBLE_EQ(
      served->model->PredictMatchProbability("entity 1: a entity 2: b"),
      before);
}

// Run under TSan via check-sanitize: hot-swaps under concurrent traffic must
// never hand a reader a torn or deleted model.
TEST_F(ModelRegistryTest, ConcurrentGetAndReloadIsSafe) {
  ASSERT_TRUE(serve_test::WriteTinyCheckpoint(Path("a.ckpt"), 11).ok());
  ASSERT_TRUE(serve_test::WriteTinyCheckpoint(Path("b.ckpt"), 77).ok());
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", Path("a.ckpt")).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> served_requests{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        std::shared_ptr<const ServedModel> served = registry.Get("m");
        ASSERT_NE(served, nullptr);
        ASSERT_NE(served->model, nullptr);
        const double probability = served->model->PredictMatchProbability(
            "entity 1: widget entity 2: widget");
        ASSERT_GE(probability, 0.0);
        ASSERT_LE(probability, 1.0);
        served_requests.fetch_add(1);
      }
    });
  }
  uint64_t last_version = 1;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        registry.Reload("m", Path(i % 2 == 0 ? "b.ckpt" : "a.ckpt")).ok());
    const uint64_t version = registry.Get("m")->version;
    EXPECT_EQ(version, last_version + 1);
    last_version = version;
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(served_requests.load(), 0);
  EXPECT_EQ(registry.Get("m")->version, 7u);
}

}  // namespace
}  // namespace tailormatch::serve
