#include "prompt/prompt.h"

#include <set>

#include <gtest/gtest.h>

namespace tailormatch::prompt {
namespace {

data::EntityPair MakePair() {
  data::EntityPair pair;
  pair.left.surface = "jabra evolve 80 ms stereo";
  pair.left.domain = data::Domain::kProduct;
  pair.right.surface = "jabra evolve 80 uc";
  pair.right.domain = data::Domain::kProduct;
  pair.label = true;
  return pair;
}

TEST(PromptTest, DefaultTemplateMatchesFigure2) {
  data::EntityPair pair = MakePair();
  const std::string text = RenderPrompt(PromptTemplate::kDefault, pair);
  EXPECT_NE(text.find("Do the two entity descriptions refer to the same "
                      "real-world product?"),
            std::string::npos);
  EXPECT_NE(text.find("Entity 1: jabra evolve 80 ms stereo"),
            std::string::npos);
  EXPECT_NE(text.find("Entity 2: jabra evolve 80 uc"), std::string::npos);
}

TEST(PromptTest, ScholarDomainUsesEntityNoun) {
  const std::string text =
      InstructionText(PromptTemplate::kDefault, data::Domain::kScholar);
  EXPECT_EQ(text.find("product"), std::string::npos);
  EXPECT_NE(text.find("entity"), std::string::npos);
}

TEST(PromptTest, ForceVariantsAppendAnswerInstruction) {
  for (PromptTemplate tmpl :
       {PromptTemplate::kComplexForce, PromptTemplate::kSimpleForce}) {
    const std::string text = InstructionText(tmpl, data::Domain::kProduct);
    EXPECT_NE(text.find("Answer with 'Yes'"), std::string::npos)
        << PromptTemplateName(tmpl);
  }
}

TEST(PromptTest, SimpleVariantsAreShorter) {
  const std::string simple =
      InstructionText(PromptTemplate::kSimpleFree, data::Domain::kProduct);
  const std::string complex_prompt =
      InstructionText(PromptTemplate::kComplexForce, data::Domain::kProduct);
  EXPECT_LT(simple.size(), complex_prompt.size());
}

TEST(PromptTest, AllTemplatesDistinct) {
  data::EntityPair pair = MakePair();
  std::set<std::string> rendered;
  for (PromptTemplate tmpl : AllPromptTemplates()) {
    rendered.insert(RenderPrompt(tmpl, pair));
  }
  EXPECT_EQ(rendered.size(), 4u);
}

TEST(PromptTest, CompletionRendering) {
  EXPECT_EQ(RenderCompletion(true), "Yes.");
  EXPECT_EQ(RenderCompletion(false), "No.");
}

TEST(ParseYesNoTest, PlainAnswers) {
  bool label = false;
  EXPECT_TRUE(ParseYesNo("Yes.", &label));
  EXPECT_TRUE(label);
  EXPECT_TRUE(ParseYesNo("No.", &label));
  EXPECT_FALSE(label);
}

TEST(ParseYesNoTest, CaseInsensitive) {
  bool label = false;
  EXPECT_TRUE(ParseYesNo("YES", &label));
  EXPECT_TRUE(label);
  EXPECT_TRUE(ParseYesNo("no", &label));
  EXPECT_FALSE(label);
}

TEST(ParseYesNoTest, EmbeddedInSentence) {
  bool label = false;
  EXPECT_TRUE(ParseYesNo(
      "Yes, the two descriptions refer to the same product.", &label));
  EXPECT_TRUE(label);
  EXPECT_TRUE(ParseYesNo("I believe the answer is no here.", &label));
  EXPECT_FALSE(label);
}

TEST(ParseYesNoTest, YesTakesPrecedence) {
  // Narayan-style parsing scans for "yes" first.
  bool label = false;
  EXPECT_TRUE(ParseYesNo("Yes. There is no doubt about it.", &label));
  EXPECT_TRUE(label);
}

TEST(ParseYesNoTest, NoVerdictDetected) {
  bool label = true;
  EXPECT_FALSE(ParseYesNo("The descriptions are ambiguous.", &label));
  EXPECT_FALSE(ParseYesNo("", &label));
}

TEST(ParseYesNoTest, DoesNotMatchInsideWords) {
  bool label = false;
  // "nominal" contains "no" but not as a word; "eyes" contains "yes".
  EXPECT_FALSE(ParseYesNo("nominal eyes", &label));
}

TEST(PromptTest, TemplateNames) {
  EXPECT_STREQ(PromptTemplateName(PromptTemplate::kDefault), "default");
  EXPECT_STREQ(PromptTemplateName(PromptTemplate::kSimpleFree),
               "simple-free");
  EXPECT_STREQ(PromptTemplateName(PromptTemplate::kComplexForce),
               "complex-force");
  EXPECT_STREQ(PromptTemplateName(PromptTemplate::kSimpleForce),
               "simple-force");
}

}  // namespace
}  // namespace tailormatch::prompt
