#include "data/benchmark_factory.h"

#include <gtest/gtest.h>

namespace tailormatch::data {
namespace {

TEST(BenchmarkFactoryTest, Table1CountsExactAtFullScale) {
  // Dataset statistics must reproduce Table 1 exactly at scale 1.
  struct Expected {
    BenchmarkId id;
    int train_pos, train_neg, valid_pos, valid_neg, test_pos, test_neg;
  };
  const Expected expected[] = {
      {BenchmarkId::kWdcSmall, 500, 2000, 500, 2000, 500, 4000},
      {BenchmarkId::kWdcMedium, 1500, 4500, 500, 3000, 500, 4000},
      {BenchmarkId::kWdcLarge, 8471, 11364, 500, 4000, 500, 4000},
      {BenchmarkId::kAbtBuy, 822, 6837, 206, 1710, 206, 1710},
      {BenchmarkId::kAmazonGoogle, 933, 8234, 234, 2059, 234, 2059},
      {BenchmarkId::kWalmartAmazon, 769, 7424, 193, 1856, 193, 1856},
      {BenchmarkId::kDblpScholar, 4277, 18688, 1070, 4672, 1070, 4672},
      {BenchmarkId::kDblpAcm, 1776, 8114, 444, 2029, 444, 2029},
  };
  for (const Expected& e : expected) {
    const BenchmarkSpec spec = GetBenchmarkSpec(e.id);
    EXPECT_EQ(spec.train_pos, e.train_pos) << spec.name;
    EXPECT_EQ(spec.train_neg, e.train_neg) << spec.name;
    EXPECT_EQ(spec.valid_pos, e.valid_pos) << spec.name;
    EXPECT_EQ(spec.valid_neg, e.valid_neg) << spec.name;
    EXPECT_EQ(spec.test_pos, e.test_pos) << spec.name;
    EXPECT_EQ(spec.test_neg, e.test_neg) << spec.name;
  }
}

TEST(BenchmarkFactoryTest, BuildMatchesSpecCounts) {
  // Note: label noise flips some train/valid labels, so compare totals and
  // the clean test split's class counts.
  Benchmark benchmark = BuildBenchmark(BenchmarkId::kAbtBuy, 0.1);
  const BenchmarkSpec spec = GetBenchmarkSpec(BenchmarkId::kAbtBuy);
  EXPECT_GT(benchmark.train.size(), 0);
  EXPECT_EQ(benchmark.test.CountPositives(),
            std::max(16, static_cast<int>(std::lround(spec.test_pos * 0.1))));
}

TEST(BenchmarkFactoryTest, TestSplitIsClean) {
  // The test split has no label noise: every pair's label equals the
  // generator ground truth (equal entity ids).
  Benchmark benchmark = BuildBenchmark(BenchmarkId::kWdcSmall, 0.1);
  for (const EntityPair& pair : benchmark.test.pairs) {
    EXPECT_EQ(pair.label, pair.left.entity_id == pair.right.entity_id);
  }
}

TEST(BenchmarkFactoryTest, TrainSplitHasLabelNoise) {
  Benchmark benchmark = BuildBenchmark(BenchmarkId::kWdcSmall, 0.5);
  int noisy = 0;
  for (const EntityPair& pair : benchmark.train.pairs) {
    if (pair.label != (pair.left.entity_id == pair.right.entity_id)) ++noisy;
  }
  const double rate = static_cast<double>(noisy) / benchmark.train.size();
  EXPECT_GT(rate, 0.01);
  EXPECT_LT(rate, 0.10);
}

TEST(BenchmarkFactoryTest, WdcIsCornerCaseHeavy) {
  Benchmark benchmark = BuildBenchmark(BenchmarkId::kWdcSmall, 0.25);
  const double corner_rate =
      static_cast<double>(benchmark.test.CountCornerCases()) /
      benchmark.test.size();
  EXPECT_GT(corner_rate, 0.7);  // the 80%-corner-case WDC variant
  EXPECT_LT(corner_rate, 0.9);
}

TEST(BenchmarkFactoryTest, WdcSizesShareTestSplit) {
  Benchmark small = BuildBenchmark(BenchmarkId::kWdcSmall, 0.1);
  Benchmark medium = BuildBenchmark(BenchmarkId::kWdcMedium, 0.1);
  ASSERT_EQ(small.test.size(), medium.test.size());
  for (int i = 0; i < small.test.size(); ++i) {
    EXPECT_EQ(small.test.pairs[static_cast<size_t>(i)].left.surface,
              medium.test.pairs[static_cast<size_t>(i)].left.surface);
  }
}

TEST(BenchmarkFactoryTest, TrainSplitsDifferAcrossWdcSizes) {
  Benchmark small = BuildBenchmark(BenchmarkId::kWdcSmall, 0.1);
  Benchmark medium = BuildBenchmark(BenchmarkId::kWdcMedium, 0.1);
  EXPECT_NE(small.train.size(), medium.train.size());
}

TEST(BenchmarkFactoryTest, DeterministicBuilds) {
  Benchmark a = BuildBenchmark(BenchmarkId::kDblpAcm, 0.1);
  Benchmark b = BuildBenchmark(BenchmarkId::kDblpAcm, 0.1);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (int i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train.pairs[static_cast<size_t>(i)].left.surface,
              b.train.pairs[static_cast<size_t>(i)].left.surface);
    EXPECT_EQ(a.train.pairs[static_cast<size_t>(i)].label,
              b.train.pairs[static_cast<size_t>(i)].label);
  }
}

TEST(BenchmarkFactoryTest, DomainsAssignedCorrectly) {
  EXPECT_EQ(BenchmarkDomain(BenchmarkId::kWdcSmall), Domain::kProduct);
  EXPECT_EQ(BenchmarkDomain(BenchmarkId::kAmazonGoogle), Domain::kProduct);
  EXPECT_EQ(BenchmarkDomain(BenchmarkId::kDblpAcm), Domain::kScholar);
  EXPECT_EQ(BenchmarkDomain(BenchmarkId::kDblpScholar), Domain::kScholar);
}

TEST(BenchmarkFactoryTest, AmazonGoogleIsSoftwareOnly) {
  Benchmark benchmark = BuildBenchmark(BenchmarkId::kAmazonGoogle, 0.1);
  for (const EntityPair& pair : benchmark.train.pairs) {
    EXPECT_EQ(pair.left.category, "software");
  }
}

TEST(BenchmarkFactoryTest, ScalingShrinksProportionally) {
  Benchmark full = BuildBenchmark(BenchmarkId::kAbtBuy, 1.0);
  Benchmark half = BuildBenchmark(BenchmarkId::kAbtBuy, 0.5);
  EXPECT_NEAR(static_cast<double>(half.train.size()) / full.train.size(),
              0.5, 0.05);
}

TEST(BenchmarkFactoryTest, MinimumSplitSizeEnforced) {
  Benchmark tiny = BuildBenchmark(BenchmarkId::kAbtBuy, 0.001);
  EXPECT_GE(tiny.test.CountPositives(), 16);
  EXPECT_GE(tiny.test.CountNegatives(), 16);
}

TEST(BenchmarkFactoryTest, NamesAndShortNames) {
  EXPECT_STREQ(BenchmarkName(BenchmarkId::kWdcSmall),
               "WDC Products (small)");
  EXPECT_STREQ(BenchmarkShortName(BenchmarkId::kWdcSmall), "WDC");
  EXPECT_STREQ(BenchmarkShortName(BenchmarkId::kDblpScholar), "D-S");
  EXPECT_EQ(AllBenchmarkIds().size(), 8u);
  EXPECT_EQ(Table2BenchmarkIds().size(), 6u);
}

TEST(DatasetTest, CountsConsistent) {
  Benchmark benchmark = BuildBenchmark(BenchmarkId::kWalmartAmazon, 0.05);
  EXPECT_EQ(benchmark.valid.CountPositives() + benchmark.valid.CountNegatives(),
            benchmark.valid.size());
}

}  // namespace
}  // namespace tailormatch::data
