#include "data/corpus_stream.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "data/entity.h"

namespace tailormatch::data {
namespace {

std::vector<Entity> Drain(CorpusStream& stream) {
  std::vector<Entity> records;
  Entity entity;
  while (stream.Next(&entity)) records.push_back(entity);
  return records;
}

uint64_t BruteForcePairs(const std::vector<Entity>& records) {
  std::unordered_map<uint64_t, uint64_t> counts;
  for (const Entity& entity : records) ++counts[entity.entity_id];
  uint64_t pairs = 0;
  for (const auto& [id, count] : counts) pairs += count * (count - 1) / 2;
  return pairs;
}

TEST(CorpusStreamTest, EmitsExactlyNumEntities) {
  CorpusStreamConfig config;
  config.num_entities = 137;
  CorpusStream stream(config);
  std::vector<Entity> records = Drain(stream);
  EXPECT_EQ(records.size(), 137u);
  EXPECT_EQ(stream.emitted(), 137u);
  Entity extra;
  EXPECT_FALSE(stream.Next(&extra));
}

TEST(CorpusStreamTest, SameSeedSameRecords) {
  CorpusStreamConfig config;
  config.num_entities = 500;
  config.seed = 42;
  CorpusStream a(config);
  CorpusStream b(config);
  std::vector<Entity> ra = Drain(a);
  std::vector<Entity> rb = Drain(b);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].entity_id, rb[i].entity_id);
    EXPECT_EQ(ra[i].surface, rb[i].surface);
  }
  EXPECT_EQ(a.true_pairs(), b.true_pairs());
}

TEST(CorpusStreamTest, DifferentSeedsDiffer) {
  CorpusStreamConfig config;
  config.num_entities = 200;
  config.seed = 1;
  CorpusStream a(config);
  config.seed = 2;
  CorpusStream b(config);
  std::vector<Entity> ra = Drain(a);
  std::vector<Entity> rb = Drain(b);
  size_t same = 0;
  for (size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].surface == rb[i].surface) ++same;
  }
  EXPECT_LT(same, ra.size() / 2);
}

TEST(CorpusStreamTest, ChunkingDoesNotChangeTheStream) {
  CorpusStreamConfig config;
  config.num_entities = 400;
  CorpusStream whole(config);
  std::vector<Entity> expected = Drain(whole);

  CorpusStream chunked(config);
  std::vector<Entity> actual;
  // Deliberately ragged chunk sizes, including zero.
  const size_t sizes[] = {1, 7, 0, 64, 13, 255, 400};
  for (size_t size : sizes) chunked.NextChunk(&actual, size);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].entity_id, expected[i].entity_id);
    EXPECT_EQ(actual[i].surface, expected[i].surface);
  }
  EXPECT_EQ(chunked.true_pairs(), whole.true_pairs());
}

TEST(CorpusStreamTest, TruePairsMatchesBruteForceCount) {
  CorpusStreamConfig config;
  config.num_entities = 2000;
  config.window = 64;  // small window forces evictions
  CorpusStream stream(config);
  std::vector<Entity> records = Drain(stream);
  EXPECT_EQ(stream.true_pairs(), BruteForcePairs(records));
  EXPECT_GT(stream.true_pairs(), 0u);
}

TEST(CorpusStreamTest, DuplicatesShareIdsWithDifferentSurfaces) {
  CorpusStreamConfig config;
  config.num_entities = 1000;
  config.duplicate_rate = 0.5;
  CorpusStream stream(config);
  std::vector<Entity> records = Drain(stream);
  std::unordered_map<uint64_t, std::set<std::string>> surfaces;
  for (const Entity& entity : records) {
    surfaces[entity.entity_id].insert(entity.surface);
  }
  size_t multi = 0;
  for (const auto& [id, forms] : surfaces) {
    if (forms.size() > 1) ++multi;
  }
  // Re-renderings of the same entity overwhelmingly yield distinct surfaces.
  EXPECT_GT(multi, 50u);
}

TEST(CorpusStreamTest, ScholarDomainProducesScholarRecords) {
  CorpusStreamConfig config;
  config.num_entities = 50;
  config.domain = Domain::kScholar;
  CorpusStream stream(config);
  std::vector<Entity> records = Drain(stream);
  ASSERT_EQ(records.size(), 50u);
  for (const Entity& entity : records) {
    EXPECT_EQ(entity.domain, Domain::kScholar);
    EXPECT_FALSE(entity.surface.empty());
  }
}

TEST(CorpusStreamTest, ZeroDuplicateRateYieldsDistinctIds) {
  CorpusStreamConfig config;
  config.num_entities = 300;
  config.duplicate_rate = 0.0;
  config.sibling_rate = 0.0;
  CorpusStream stream(config);
  std::vector<Entity> records = Drain(stream);
  std::set<uint64_t> ids;
  for (const Entity& entity : records) ids.insert(entity.entity_id);
  EXPECT_EQ(ids.size(), records.size());
  EXPECT_EQ(stream.true_pairs(), 0u);
}

}  // namespace
}  // namespace tailormatch::data
