#include "data/generator.h"

#include <set>

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace tailormatch::data {
namespace {

TEST(ProductGeneratorTest, BaseEntityHasAllAttributes) {
  ProductGenerator generator(ProductGeneratorConfig{});
  Rng rng(1);
  Entity entity = generator.SampleBase(rng);
  EXPECT_EQ(entity.domain, Domain::kProduct);
  for (const char* name :
       {"brand", "line", "model", "type", "spec", "variant", "sku"}) {
    EXPECT_TRUE(entity.HasAttribute(name)) << name;
    EXPECT_FALSE(entity.GetAttribute(name).empty()) << name;
  }
  EXPECT_FALSE(entity.surface.empty());
}

TEST(ProductGeneratorTest, EntityIdsAreUnique) {
  ProductGenerator generator(ProductGeneratorConfig{});
  Rng rng(2);
  std::set<uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    ids.insert(generator.SampleBase(rng).entity_id);
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(ProductGeneratorTest, SaltSeparatesPopulations) {
  ProductGeneratorConfig a_config;
  a_config.id_salt = 1;
  ProductGeneratorConfig b_config;
  b_config.id_salt = 2;
  ProductGenerator a(a_config), b(b_config);
  Rng rng(3);
  EXPECT_NE(a.SampleBase(rng).entity_id, b.SampleBase(rng).entity_id);
}

TEST(ProductGeneratorTest, VariantKeepsIdentity) {
  ProductGenerator generator(ProductGeneratorConfig{});
  Rng rng(4);
  Entity base = generator.SampleBase(rng);
  Entity variant = generator.RenderVariant(base, 0.5, rng);
  EXPECT_EQ(variant.entity_id, base.entity_id);
  EXPECT_EQ(variant.GetAttribute("model"), base.GetAttribute("model"));
}

TEST(ProductGeneratorTest, SiblingIsDifferentEntity) {
  ProductGenerator generator(ProductGeneratorConfig{});
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Entity base = generator.SampleBase(rng);
    Entity sibling = generator.MutateToSibling(base, rng);
    EXPECT_NE(sibling.entity_id, base.entity_id);
    EXPECT_EQ(sibling.GetAttribute("brand"), base.GetAttribute("brand"));
    // At least one discriminative attribute must differ.
    const bool differs =
        sibling.GetAttribute("model") != base.GetAttribute("model") ||
        sibling.GetAttribute("spec") != base.GetAttribute("spec") ||
        sibling.GetAttribute("variant") != base.GetAttribute("variant");
    EXPECT_TRUE(differs);
    // SKUs never collide across distinct products.
    EXPECT_NE(sibling.GetAttribute("sku"), base.GetAttribute("sku"));
  }
}

TEST(ProductGeneratorTest, ClothingSiblingsMutateModel) {
  ProductGeneratorConfig config;
  config.categories = {{"clothing", 1.0}};
  ProductGenerator generator(config);
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    Entity base = generator.SampleBase(rng);
    Entity sibling = generator.MutateToSibling(base, rng);
    EXPECT_NE(sibling.GetAttribute("model"), base.GetAttribute("model"));
  }
}

TEST(ProductGeneratorTest, CategoryMixRespected) {
  ProductGeneratorConfig config;
  config.categories = {{"software", 1.0}};
  ProductGenerator generator(config);
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(generator.SampleBase(rng).category, "software");
  }
}

TEST(ProductGeneratorTest, HigherDivergenceShortensSurfaces) {
  ProductGenerator generator(ProductGeneratorConfig{});
  Rng rng(8);
  double low_len = 0, high_len = 0;
  for (int i = 0; i < 200; ++i) {
    Entity base = generator.SampleBase(rng);
    low_len += generator.RenderVariant(base, 0.05, rng).surface.size();
    high_len += generator.RenderVariant(base, 0.9, rng).surface.size();
  }
  EXPECT_LT(high_len, low_len);
}

TEST(ScholarGeneratorTest, BaseEntityShape) {
  ScholarGenerator generator(ScholarGeneratorConfig{});
  Rng rng(9);
  Entity entity = generator.SampleBase(rng);
  EXPECT_EQ(entity.domain, Domain::kScholar);
  for (const char* name : {"author", "title", "venue", "year"}) {
    EXPECT_TRUE(entity.HasAttribute(name)) << name;
  }
  // Serialization rule: semicolon-delimited fields (Section 2).
  EXPECT_NE(entity.surface.find(';'), std::string::npos);
}

TEST(ScholarGeneratorTest, YearInRange) {
  ScholarGenerator generator(ScholarGeneratorConfig{});
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const int year =
        std::stoi(generator.SampleBase(rng).GetAttribute("year"));
    EXPECT_GE(year, 1995);
    EXPECT_LE(year, 2015);
  }
}

TEST(ScholarGeneratorTest, SiblingDiffers) {
  ScholarGenerator generator(ScholarGeneratorConfig{});
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    Entity base = generator.SampleBase(rng);
    Entity sibling = generator.MutateToSibling(base, rng);
    EXPECT_NE(sibling.entity_id, base.entity_id);
    const bool differs =
        sibling.GetAttribute("title") != base.GetAttribute("title") ||
        sibling.GetAttribute("year") != base.GetAttribute("year") ||
        sibling.GetAttribute("venue") != base.GetAttribute("venue");
    EXPECT_TRUE(differs);
  }
}

TEST(ScholarGeneratorTest, VenueAbbreviationStaysConsistent) {
  ScholarGenerator generator(ScholarGeneratorConfig{});
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    Entity base = generator.SampleBase(rng);
    Entity sibling = generator.MutateToSibling(base, rng);
    // If the venue changed, the abbreviation must match the new venue's
    // index (both are updated together).
    if (sibling.GetAttribute("venue") != base.GetAttribute("venue")) {
      EXPECT_NE(sibling.GetAttribute("venue_abbrev"),
                base.GetAttribute("venue_abbrev"));
    }
  }
}

TEST(ScholarGeneratorTest, SharedPoolSaltSharedAcrossGenerators) {
  ScholarGeneratorConfig config;
  config.shared_pool_salt = 42;
  ScholarGenerator a(config), b(config);
  Rng rng_a(13), rng_b(13);
  // Same salt + same stream position => the DBLP-style shared population.
  EXPECT_EQ(a.SampleBase(rng_a).entity_id, b.SampleBase(rng_b).entity_id);
}

TEST(RenderProductSurfaceTest, Deterministic) {
  ProductGenerator generator(ProductGeneratorConfig{});
  Rng rng(14);
  Entity base = generator.SampleBase(rng);
  Rng r1(99), r2(99);
  EXPECT_EQ(RenderProductSurface(base, 0.4, 0.03, 0.2, r1),
            RenderProductSurface(base, 0.4, 0.03, 0.2, r2));
}

}  // namespace
}  // namespace tailormatch::data
