#include "data/perturb.h"

#include <cctype>

#include <gtest/gtest.h>

namespace tailormatch::data {
namespace {

TEST(PerturbTest, TypoChangesWord) {
  Rng rng(1);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    std::string out = ApplyTypo("cassette", rng);
    if (out != "cassette") ++changed;
    EXPECT_GE(out.size(), 7u);
    EXPECT_LE(out.size(), 9u);
  }
  EXPECT_GT(changed, 40);  // swap may occasionally no-op on repeats
}

TEST(PerturbTest, TypoLeavesShortWordsAlone) {
  Rng rng(2);
  EXPECT_EQ(ApplyTypo("ab", rng), "ab");
  EXPECT_EQ(ApplyTypo("", rng), "");
}

TEST(PerturbTest, Abbreviate) {
  EXPECT_EQ(Abbreviate("professional", 4), "prof");
  EXPECT_EQ(Abbreviate("pro", 4), "pro");     // too short
  EXPECT_EQ(Abbreviate("prost", 4), "prost");  // keep+2 rule
}

TEST(PerturbTest, Initial) {
  EXPECT_EQ(Initial("marcus"), "m");
  EXPECT_EQ(Initial(""), "");
}

TEST(PerturbTest, ReformatCodePreservesGroups) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::string out = ReformatCode("pg-730", rng);
    EXPECT_TRUE(out == "pg-730" || out == "pg 730" || out == "pg730") << out;
  }
}

TEST(PerturbTest, ReformatCodeHandlesNoSeparator) {
  Rng rng(4);
  std::string out = ReformatCode("abc123", rng);
  EXPECT_TRUE(out == "abc-123" || out == "abc 123" || out == "abc123") << out;
}

TEST(PerturbTest, DropTokensNeverEmpty) {
  Rng rng(5);
  std::vector<std::string> tokens = {"a", "b", "c"};
  for (int i = 0; i < 100; ++i) {
    std::vector<std::string> out = DropTokens(tokens, 0.95, rng);
    EXPECT_FALSE(out.empty());
  }
}

TEST(PerturbTest, DropTokensZeroProbabilityKeepsAll) {
  Rng rng(6);
  std::vector<std::string> tokens = {"a", "b", "c"};
  EXPECT_EQ(DropTokens(tokens, 0.0, rng), tokens);
}

TEST(PerturbTest, SwapAdjacentPreservesMultiset) {
  Rng rng(7);
  std::vector<std::string> tokens = {"a", "b", "c", "d"};
  std::vector<std::string> out = SwapAdjacentTokens(tokens, rng);
  EXPECT_EQ(out.size(), tokens.size());
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, tokens);
}

TEST(PerturbTest, SwapAdjacentSingleToken) {
  Rng rng(8);
  std::vector<std::string> tokens = {"solo"};
  EXPECT_EQ(SwapAdjacentTokens(tokens, rng), tokens);
}

TEST(PerturbTest, MutateDigitsAlwaysChanges) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    std::string out = MutateDigits("730", rng);
    EXPECT_NE(out, "730");
    EXPECT_EQ(out.size(), 3u);
    for (char c : out) {
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)));
    }
  }
}

TEST(PerturbTest, MutateDigitsNoDigitsAppends) {
  Rng rng(10);
  std::string out = MutateDigits("abc", rng);
  EXPECT_NE(out, "abc");
}

TEST(PerturbTest, NoiseTokenNonEmptyAndNonNumeric) {
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    std::string token = RandomNoiseToken(rng);
    EXPECT_FALSE(token.empty());
    // Noise must never look like an identifier (that would fabricate
    // spurious non-match evidence).
    EXPECT_FALSE(std::isdigit(static_cast<unsigned char>(token[0])));
  }
}

}  // namespace
}  // namespace tailormatch::data
