// Property-based tests over every benchmark in Table 1: structural
// invariants that must hold for any benchmark id and scale.

#include <gtest/gtest.h>

#include "data/benchmark_factory.h"
#include "prompt/prompt.h"

namespace tailormatch::data {
namespace {

class BenchmarkPropertyTest : public ::testing::TestWithParam<BenchmarkId> {
 protected:
  static constexpr double kScale = 0.06;
};

TEST_P(BenchmarkPropertyTest, SplitsNonEmptyAndLabelled) {
  Benchmark benchmark = BuildBenchmark(GetParam(), kScale);
  for (const Dataset* split :
       {&benchmark.train, &benchmark.valid, &benchmark.test}) {
    EXPECT_GT(split->size(), 0);
    EXPECT_GT(split->CountPositives(), 0);
    EXPECT_GT(split->CountNegatives(), 0);
  }
}

TEST_P(BenchmarkPropertyTest, SurfacesNonEmpty) {
  Benchmark benchmark = BuildBenchmark(GetParam(), kScale);
  for (const EntityPair& pair : benchmark.train.pairs) {
    EXPECT_FALSE(pair.left.surface.empty());
    EXPECT_FALSE(pair.right.surface.empty());
  }
}

TEST_P(BenchmarkPropertyTest, DomainConsistentAcrossPairs) {
  Benchmark benchmark = BuildBenchmark(GetParam(), kScale);
  const Domain domain = BenchmarkDomain(GetParam());
  EXPECT_EQ(benchmark.domain, domain);
  for (const EntityPair& pair : benchmark.test.pairs) {
    EXPECT_EQ(pair.left.domain, domain);
    EXPECT_EQ(pair.right.domain, domain);
  }
}

TEST_P(BenchmarkPropertyTest, TestLabelsAgreeWithEntityIds) {
  Benchmark benchmark = BuildBenchmark(GetParam(), kScale);
  for (const EntityPair& pair : benchmark.test.pairs) {
    EXPECT_EQ(pair.label, pair.left.entity_id == pair.right.entity_id);
  }
}

TEST_P(BenchmarkPropertyTest, ClassRatioRoughlyMatchesSpec) {
  Benchmark benchmark = BuildBenchmark(GetParam(), kScale);
  const BenchmarkSpec spec = GetBenchmarkSpec(GetParam());
  const double spec_ratio =
      static_cast<double>(spec.test_pos) / (spec.test_pos + spec.test_neg);
  const double built_ratio =
      static_cast<double>(benchmark.test.CountPositives()) /
      benchmark.test.size();
  EXPECT_NEAR(built_ratio, spec_ratio, 0.05);
}

TEST_P(BenchmarkPropertyTest, DeterministicAcrossBuilds) {
  Benchmark a = BuildBenchmark(GetParam(), kScale);
  Benchmark b = BuildBenchmark(GetParam(), kScale);
  ASSERT_EQ(a.test.size(), b.test.size());
  for (int i = 0; i < a.test.size(); ++i) {
    EXPECT_EQ(a.test.pairs[static_cast<size_t>(i)].right.surface,
              b.test.pairs[static_cast<size_t>(i)].right.surface);
  }
}

TEST_P(BenchmarkPropertyTest, PromptsRenderForEveryPair) {
  Benchmark benchmark = BuildBenchmark(GetParam(), kScale);
  for (const EntityPair& pair : benchmark.valid.pairs) {
    const std::string text =
        prompt::RenderPrompt(prompt::PromptTemplate::kDefault, pair);
    EXPECT_NE(text.find("Entity 1:"), std::string::npos);
    EXPECT_NE(text.find("Entity 2:"), std::string::npos);
  }
}

TEST_P(BenchmarkPropertyTest, CornerFractionNearSpec) {
  Benchmark benchmark = BuildBenchmark(GetParam(), 0.15);
  const BenchmarkSpec spec = GetBenchmarkSpec(GetParam());
  const double fraction =
      static_cast<double>(benchmark.test.CountCornerCases()) /
      benchmark.test.size();
  EXPECT_NEAR(fraction, spec.corner_fraction, 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkPropertyTest,
    ::testing::ValuesIn(AllBenchmarkIds()),
    [](const ::testing::TestParamInfo<BenchmarkId>& info) {
      std::string name = BenchmarkShortName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tailormatch::data
