#include "data/word_pools.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace tailormatch::data {
namespace {

std::set<std::string> ToSet(std::span<const std::string_view> pool) {
  std::set<std::string> out;
  for (std::string_view word : pool) out.emplace(word);
  return out;
}

TEST(WordPoolsTest, AllPoolsNonEmpty) {
  EXPECT_FALSE(ElectronicsBrands().empty());
  EXPECT_FALSE(AudioBrands().empty());
  EXPECT_FALSE(StorageBrands().empty());
  EXPECT_FALSE(ClothingBrands().empty());
  EXPECT_FALSE(BikeBrands().empty());
  EXPECT_FALSE(SoftwareBrands().empty());
  EXPECT_FALSE(ProductLines().empty());
  EXPECT_FALSE(FirstNames().empty());
  EXPECT_FALSE(LastNames().empty());
  EXPECT_FALSE(TitleNouns().empty());
  EXPECT_FALSE(VenueNames().empty());
}

TEST(WordPoolsTest, VenueAbbreviationsAlignWithNames) {
  EXPECT_EQ(VenueNames().size(), VenueAbbreviations().size());
}

TEST(WordPoolsTest, BrandPoolsPairwiseDisjoint) {
  // Distinct brand pools keep product categories identifiable.
  const std::set<std::string> electronics = ToSet(ElectronicsBrands());
  const std::set<std::string> software = ToSet(SoftwareBrands());
  const std::set<std::string> clothing = ToSet(ClothingBrands());
  for (const std::string& brand : software) {
    EXPECT_EQ(electronics.count(brand), 0u) << brand;
    EXPECT_EQ(clothing.count(brand), 0u) << brand;
  }
}

TEST(WordPoolsTest, DomainsShareNoVocabulary) {
  // The cross-domain transfer results depend on the product and scholar
  // domains having (nearly) disjoint vocabularies.
  std::set<std::string> product;
  for (auto pool : {ElectronicsBrands(), AudioBrands(), StorageBrands(),
                    ClothingBrands(), BikeBrands(), SoftwareBrands(),
                    ProductLines(), ElectronicsTypes(), AudioTypes(),
                    StorageTypes(), ClothingTypes(), BikeTypes(),
                    SoftwareTypes(), VariantWords(), SoftwareEditions(),
                    Colors()}) {
    for (std::string_view word : pool) product.emplace(word);
  }
  std::set<std::string> scholar;
  for (auto pool : {FirstNames(), LastNames(), TitleNouns(),
                    TitleAdjectives(), TitleTasks(), VenueAbbreviations()}) {
    for (std::string_view word : pool) scholar.emplace(word);
  }
  for (const std::string& word : scholar) {
    EXPECT_EQ(product.count(word), 0u) << word;
  }
}

TEST(WordPoolsTest, WordsAreLowercaseSingleTokens) {
  for (auto pool : {ElectronicsBrands(), ProductLines(), TitleNouns(),
                    FirstNames(), LastNames()}) {
    for (std::string_view word : pool) {
      for (char c : word) {
        EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)))
            << word << ": pools must be lowercase single tokens";
      }
    }
  }
}

}  // namespace
}  // namespace tailormatch::data
