#include "data/dataset_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/benchmark_factory.h"

namespace tailormatch::data {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(DatasetIoTest, CsvRoundTrip) {
  Dataset dataset = BuildBenchmark(BenchmarkId::kAbtBuy, 0.03).train;
  const std::string path = TempPath("tm_io_roundtrip.csv");
  ASSERT_TRUE(WritePairsCsv(dataset, path).ok());
  Result<Dataset> loaded = ReadPairsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), dataset.size());
  for (int i = 0; i < dataset.size(); ++i) {
    const EntityPair& a = dataset.pairs[static_cast<size_t>(i)];
    const EntityPair& b = loaded.value().pairs[static_cast<size_t>(i)];
    EXPECT_EQ(a.left.surface, b.left.surface);
    EXPECT_EQ(a.right.surface, b.right.surface);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.corner_case, b.corner_case);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvEscaping) {
  Dataset dataset;
  EntityPair pair;
  pair.left.surface = "has, comma and \"quotes\"";
  pair.right.surface = "plain";
  pair.label = true;
  dataset.pairs.push_back(pair);
  const std::string path = TempPath("tm_io_escape.csv");
  ASSERT_TRUE(WritePairsCsv(dataset, path).ok());
  Result<Dataset> loaded = ReadPairsCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().pairs[0].left.surface,
            "has, comma and \"quotes\"");
  std::remove(path.c_str());
}

TEST(DatasetIoTest, ReadRejectsBadHeader) {
  const std::string path = TempPath("tm_io_badheader.csv");
  {
    std::ofstream out(path);
    out << "wrong,header\n";
  }
  Result<Dataset> loaded = ReadPairsCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, ReadRejectsMalformedRecord) {
  const std::string path = TempPath("tm_io_malformed.csv");
  {
    std::ofstream out(path);
    out << "left,right,label,corner_case\n";
    out << "only,three,fields\n";
  }
  Result<Dataset> loaded = ReadPairsCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, ReadMissingFileFails) {
  Result<Dataset> loaded = ReadPairsCsv("/definitely/not/here.csv");
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(DatasetIoTest, JsonlFormat) {
  Dataset dataset;
  EntityPair pair;
  pair.left.surface = "jabra \"evolve\" 80";
  pair.right.surface = "jabra evolve 80";
  pair.label = true;
  dataset.pairs.push_back(pair);
  pair.label = false;
  dataset.pairs.push_back(pair);
  const std::string path = TempPath("tm_io_ft.jsonl");
  ASSERT_TRUE(WriteFineTuningJsonl(dataset, "Match these?", path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"role\":\"user\""), std::string::npos);
  EXPECT_NE(line.find("\\\"evolve\\\""), std::string::npos);  // escaped
  EXPECT_NE(line.find("\"content\":\"Yes.\""), std::string::npos);
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"content\":\"No.\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, JsonEscapeControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(DatasetIoTest, CsvEscapeOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

}  // namespace
}  // namespace tailormatch::data
