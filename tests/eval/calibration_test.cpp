#include "eval/calibration.h"

#include <gtest/gtest.h>

#include "data/benchmark_factory.h"

namespace tailormatch::eval {
namespace {

std::vector<ScoredPair> PerfectlyCalibrated() {
  // Probability p assigned to a fraction p of positives in each bucket.
  std::vector<ScoredPair> scored;
  for (int bucket = 0; bucket < 10; ++bucket) {
    const double p = bucket / 10.0 + 0.05;
    for (int i = 0; i < 100; ++i) {
      scored.push_back({p, i < static_cast<int>(p * 100)});
    }
  }
  return scored;
}

TEST(CalibrationTest, PerfectCalibrationHasTinyEce) {
  CalibrationReport report = ComputeCalibration(PerfectlyCalibrated());
  EXPECT_LT(report.expected_calibration_error, 0.02);
}

TEST(CalibrationTest, OverconfidentModelHasLargeEce) {
  std::vector<ScoredPair> scored;
  for (int i = 0; i < 200; ++i) {
    scored.push_back({0.99, i % 2 == 0});  // claims 99%, is right 50%
  }
  CalibrationReport report = ComputeCalibration(scored);
  EXPECT_GT(report.expected_calibration_error, 0.4);
  EXPECT_GT(report.brier_score, 0.2);
}

TEST(CalibrationTest, BrierScoreKnownValues) {
  // Always predicting 0.5 on balanced data: Brier = 0.25.
  std::vector<ScoredPair> scored;
  for (int i = 0; i < 100; ++i) scored.push_back({0.5, i % 2 == 0});
  CalibrationReport report = ComputeCalibration(scored);
  EXPECT_NEAR(report.brier_score, 0.25, 1e-9);
}

TEST(CalibrationTest, BinsPartitionSamples) {
  CalibrationReport report = ComputeCalibration(PerfectlyCalibrated(), 10);
  int total = 0;
  for (int count : report.bin_counts) total += count;
  EXPECT_EQ(total, 1000);
}

TEST(ThresholdSweepTest, CoversUnitInterval) {
  std::vector<ScoredPair> scored = PerfectlyCalibrated();
  std::vector<ThresholdPoint> sweep = SweepThresholds(scored, 0.1);
  ASSERT_FALSE(sweep.empty());
  EXPECT_GT(sweep.front().threshold, 0.0);
  EXPECT_LT(sweep.back().threshold, 1.0);
}

TEST(ThresholdSweepTest, RecallFallsAsThresholdRises) {
  std::vector<ScoredPair> scored = PerfectlyCalibrated();
  std::vector<ThresholdPoint> sweep = SweepThresholds(scored, 0.1);
  for (size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i - 1].metrics.recall, sweep[i].metrics.recall);
  }
  // Precision rises with the threshold while any positives remain.
  EXPECT_LT(sweep.front().metrics.precision,
            sweep[sweep.size() / 2].metrics.precision);
}

TEST(ThresholdSweepTest, BestThresholdBeatsEndpoints) {
  std::vector<ScoredPair> scored = PerfectlyCalibrated();
  ThresholdPoint best = BestThreshold(scored, 0.05);
  std::vector<ThresholdPoint> sweep = SweepThresholds(scored, 0.05);
  for (const ThresholdPoint& point : sweep) {
    EXPECT_GE(best.metrics.f1, point.metrics.f1);
  }
}

TEST(ScoreDatasetTest, ScoresEveryPairDeterministically) {
  std::vector<std::string> corpus = {"entity 1: a 12 entity 2: b 34"};
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1500, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  llm::SimLlm model(config, std::move(tokenizer));
  data::Dataset dataset =
      data::BuildBenchmark(data::BenchmarkId::kAbtBuy, 0.02).test;
  std::vector<ScoredPair> a = ScoreDataset(model, dataset);
  std::vector<ScoredPair> b = ScoreDataset(model, dataset);
  ASSERT_EQ(a.size(), static_cast<size_t>(dataset.size()));
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].probability, b[i].probability);
  }
}

TEST(ScoreDatasetTest, MaxPairsCaps) {
  std::vector<std::string> corpus = {"entity 1: a entity 2: b"};
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1500, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  llm::SimLlm model(config, std::move(tokenizer));
  data::Dataset dataset =
      data::BuildBenchmark(data::BenchmarkId::kAbtBuy, 0.02).test;
  EXPECT_EQ(ScoreDataset(model, dataset, prompt::PromptTemplate::kDefault, 7)
                .size(),
            7u);
}

}  // namespace
}  // namespace tailormatch::eval
