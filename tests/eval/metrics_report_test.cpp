#include "eval/metrics_report.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tailormatch::eval {
namespace {

obs::SpanNode MakeSpan(const std::string& name, int64_t count) {
  obs::SpanNode node;
  node.name = name;
  node.path = name;
  node.count = count;
  node.total_seconds = 0.001 * static_cast<double>(count);
  return node;
}

obs::WindowedHistogramStats MakeWindow(const std::string& name) {
  obs::WindowedHistogramStats stats;
  stats.name = name;
  obs::WindowStats window;
  window.window_seconds = 10;
  window.count = 5;
  window.rate = 0.5;
  window.p50 = 1.0;
  window.p95 = 2.0;
  window.p99 = 3.0;
  stats.windows.push_back(window);
  stats.rate_ewma = 0.4;
  return stats;
}

// The report is diffed across runs: block ordering must not depend on the
// order the snapshot happened to be assembled in.
TEST(MetricsReportTest, SpanTreeAndWindowsPrintInSortedOrder) {
  obs::MetricsSnapshot snapshot;
  // Roots deliberately scrambled, with scrambled children under one root.
  obs::SpanNode zebra = MakeSpan("zebra_span", 2);
  obs::SpanNode apple = MakeSpan("apple_span", 3);
  obs::SpanNode late_child = MakeSpan("zz_child", 1);
  late_child.path = "apple_span.zz_child";
  obs::SpanNode early_child = MakeSpan("aa_child", 1);
  early_child.path = "apple_span.aa_child";
  apple.children.push_back(late_child);
  apple.children.push_back(early_child);
  snapshot.spans.push_back(zebra);
  snapshot.spans.push_back(apple);

  snapshot.windows.push_back(MakeWindow("zz.window"));
  snapshot.windows.push_back(MakeWindow("aa.window"));

  std::ostringstream out;
  PrintMetricsReport(snapshot, out);
  const std::string text = out.str();

  // Roots sorted by name, and scrambled children re-sorted under theirs.
  const size_t apple_at = text.find("apple_span");
  const size_t zebra_at = text.find("zebra_span");
  const size_t aa_child_at = text.find("aa_child");
  const size_t zz_child_at = text.find("zz_child");
  ASSERT_NE(apple_at, std::string::npos) << text;
  ASSERT_NE(zebra_at, std::string::npos);
  ASSERT_NE(aa_child_at, std::string::npos);
  ASSERT_NE(zz_child_at, std::string::npos);
  EXPECT_LT(apple_at, zebra_at);
  EXPECT_LT(aa_child_at, zz_child_at);
  EXPECT_LT(zz_child_at, zebra_at) << "children stay under their root";

  // Windowed block present, sorted by name, one row per window span.
  EXPECT_NE(text.find("rolling windows (latencies in ms):"),
            std::string::npos);
  const size_t aa_window_at = text.find("aa.window[10s]");
  const size_t zz_window_at = text.find("zz.window[10s]");
  ASSERT_NE(aa_window_at, std::string::npos) << text;
  ASSERT_NE(zz_window_at, std::string::npos);
  EXPECT_LT(aa_window_at, zz_window_at);
}

TEST(MetricsReportTest, IdenticalSnapshotsInDifferentOrderRenderIdentically) {
  obs::MetricsSnapshot forward;
  forward.spans.push_back(MakeSpan("one", 1));
  forward.spans.push_back(MakeSpan("two", 2));
  forward.windows.push_back(MakeWindow("w.a"));
  forward.windows.push_back(MakeWindow("w.b"));

  obs::MetricsSnapshot reversed;
  reversed.spans.push_back(MakeSpan("two", 2));
  reversed.spans.push_back(MakeSpan("one", 1));
  reversed.windows.push_back(MakeWindow("w.b"));
  reversed.windows.push_back(MakeWindow("w.a"));

  std::ostringstream a, b;
  PrintMetricsReport(forward, a);
  PrintMetricsReport(reversed, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(MetricsReportTest, EmptyWindowsBlockIsOmitted) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("some.counter", 1);
  std::ostringstream out;
  PrintMetricsReport(snapshot, out);
  EXPECT_EQ(out.str().find("rolling windows"), std::string::npos);
  EXPECT_NE(out.str().find("some.counter"), std::string::npos);
}

}  // namespace
}  // namespace tailormatch::eval
