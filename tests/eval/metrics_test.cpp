#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace tailormatch::eval {
namespace {

TEST(MetricsTest, PerfectClassifier) {
  ConfusionCounts counts;
  for (int i = 0; i < 10; ++i) counts.Add(true, true);
  for (int i = 0; i < 90; ++i) counts.Add(false, false);
  PrecisionRecallF1 metrics = ComputeMetrics(counts);
  EXPECT_DOUBLE_EQ(metrics.precision, 100.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 100.0);
  EXPECT_DOUBLE_EQ(metrics.f1, 100.0);
}

TEST(MetricsTest, AllNegativePredictionsGiveZeroF1) {
  ConfusionCounts counts;
  for (int i = 0; i < 10; ++i) counts.Add(false, true);
  for (int i = 0; i < 90; ++i) counts.Add(false, false);
  PrecisionRecallF1 metrics = ComputeMetrics(counts);
  EXPECT_DOUBLE_EQ(metrics.recall, 0.0);
  EXPECT_DOUBLE_EQ(metrics.f1, 0.0);
}

TEST(MetricsTest, KnownMixedCase) {
  ConfusionCounts counts;
  counts.true_positive = 8;
  counts.false_positive = 2;
  counts.false_negative = 2;
  counts.true_negative = 88;
  PrecisionRecallF1 metrics = ComputeMetrics(counts);
  EXPECT_DOUBLE_EQ(metrics.precision, 80.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 80.0);
  EXPECT_DOUBLE_EQ(metrics.f1, 80.0);
}

TEST(MetricsTest, PrecisionRecallAsymmetry) {
  ConfusionCounts counts;
  counts.true_positive = 9;
  counts.false_positive = 1;
  counts.false_negative = 9;
  PrecisionRecallF1 metrics = ComputeMetrics(counts);
  EXPECT_DOUBLE_EQ(metrics.precision, 90.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 50.0);
  EXPECT_NEAR(metrics.f1, 2 * 90.0 * 50.0 / 140.0, 1e-9);
}

TEST(MetricsTest, EmptyCountsAreZero) {
  PrecisionRecallF1 metrics = ComputeMetrics(ConfusionCounts{});
  EXPECT_DOUBLE_EQ(metrics.f1, 0.0);
}

TEST(MetricsTest, ConfusionCountsTotal) {
  ConfusionCounts counts;
  counts.Add(true, true);
  counts.Add(true, false);
  counts.Add(false, true);
  counts.Add(false, false);
  EXPECT_EQ(counts.total(), 4);
  EXPECT_EQ(counts.true_positive, 1);
  EXPECT_EQ(counts.false_positive, 1);
  EXPECT_EQ(counts.false_negative, 1);
  EXPECT_EQ(counts.true_negative, 1);
}

TEST(StatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
}

}  // namespace
}  // namespace tailormatch::eval
