#include "eval/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace tailormatch::eval {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table({"Model", "F1"});
  table.AddRow({"llama", "53.36"});
  table.AddRow({"gpt", "81.61"});
  std::ostringstream out;
  table.Print(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("Model"), std::string::npos);
  EXPECT_NE(rendered.find("llama"), std::string::npos);
  EXPECT_NE(rendered.find("81.61"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter table({"A", "B"});
  table.AddRow({"longvalue", "x"});
  std::ostringstream out;
  table.Print(out);
  std::istringstream lines(out.str());
  std::string first, second;
  std::getline(lines, first);
  std::getline(lines, second);
  EXPECT_EQ(first.size(), second.size());  // separator matches header width
}

TEST(TablePrinterTest, SeparatorRows) {
  TablePrinter table({"X"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::ostringstream out;
  table.Print(out);
  // Header separator + explicit separator = at least two dashed lines.
  int dashes = 0;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("---") != std::string::npos) ++dashes;
  }
  EXPECT_GE(dashes, 2);
}

TEST(TablePrinterTest, ScoreCellFormats) {
  EXPECT_EQ(TablePrinter::ScoreCell(56.57, 0.0, false), "56.57");
  EXPECT_EQ(TablePrinter::ScoreCell(87.34, 30.77, true), "87.34 (+30.77)");
  EXPECT_EQ(TablePrinter::ScoreCell(39.53, -13.83, true), "39.53 (-13.83)");
}

TEST(TablePrinterDeathTest, RowWidthMismatchAborts) {
  TablePrinter table({"A", "B"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "TM_CHECK");
}

}  // namespace
}  // namespace tailormatch::eval
