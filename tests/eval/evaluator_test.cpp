#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "data/benchmark_factory.h"

namespace tailormatch::eval {
namespace {

llm::SimLlm TinyModel() {
  std::vector<std::string> corpus = {
      "do the two entity descriptions refer to the same real-world product",
      "entity 1: alpha beta 12 entity 2: gamma delta 34",
  };
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1500, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.max_seq = 48;
  return llm::SimLlm(config, std::move(tokenizer));
}

data::Dataset SmallTestSet() {
  return data::BuildBenchmark(data::BenchmarkId::kAbtBuy, 0.05).test;
}

TEST(EvaluatorTest, CountsCoverWholeDataset) {
  llm::SimLlm model = TinyModel();
  data::Dataset dataset = SmallTestSet();
  EvalResult result = EvaluateModel(model, dataset);
  EXPECT_EQ(result.counts.total(), dataset.size());
}

TEST(EvaluatorTest, SubsampleCapsSize) {
  llm::SimLlm model = TinyModel();
  data::Dataset dataset = SmallTestSet();
  EvalOptions options;
  options.max_pairs = 40;
  EvalResult result = EvaluateModel(model, dataset, options);
  EXPECT_LE(result.counts.total(), 40);
  EXPECT_GT(result.counts.total(), 30);
}

TEST(EvaluatorTest, SubsampleIsStratified) {
  llm::SimLlm model = TinyModel();
  data::Dataset dataset = SmallTestSet();
  const double full_ratio =
      static_cast<double>(dataset.CountPositives()) / dataset.size();
  EvalOptions options;
  options.max_pairs = 50;
  EvalResult result = EvaluateModel(model, dataset, options);
  const double sample_ratio =
      static_cast<double>(result.counts.true_positive +
                          result.counts.false_negative) /
      result.counts.total();
  EXPECT_NEAR(sample_ratio, full_ratio, 0.06);
}

TEST(EvaluatorTest, DeterministicAcrossCalls) {
  llm::SimLlm model = TinyModel();
  data::Dataset dataset = SmallTestSet();
  EvalOptions options;
  options.max_pairs = 60;
  EXPECT_DOUBLE_EQ(EvaluateF1(model, dataset, options),
                   EvaluateF1(model, dataset, options));
}

TEST(EvaluatorTest, MetricsWithinBounds) {
  llm::SimLlm model = TinyModel();
  EvalResult result = EvaluateModel(model, SmallTestSet());
  EXPECT_GE(result.metrics.f1, 0.0);
  EXPECT_LE(result.metrics.f1, 100.0);
  EXPECT_GE(result.metrics.precision, 0.0);
  EXPECT_LE(result.metrics.precision, 100.0);
}

TEST(EvaluatorTest, PromptTemplateChangesInputs) {
  // Different prompt templates generally produce (slightly) different
  // scores for an untrained model; at minimum the call must succeed for
  // every template.
  llm::SimLlm model = TinyModel();
  data::Dataset dataset = SmallTestSet();
  for (prompt::PromptTemplate tmpl : prompt::AllPromptTemplates()) {
    EvalOptions options;
    options.prompt_template = tmpl;
    options.max_pairs = 30;
    const double f1 = EvaluateF1(model, dataset, options);
    EXPECT_GE(f1, 0.0);
    EXPECT_LE(f1, 100.0);
  }
}

}  // namespace
}  // namespace tailormatch::eval
