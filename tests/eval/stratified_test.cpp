#include <gtest/gtest.h>

#include "data/benchmark_factory.h"
#include "eval/evaluator.h"

namespace tailormatch::eval {
namespace {

llm::SimLlm TinyModel() {
  std::vector<std::string> corpus = {
      "do the two entity descriptions refer to the same real-world product",
      "entity 1: alpha beta 12 entity 2: gamma delta 34",
  };
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1500, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  return llm::SimLlm(config, std::move(tokenizer));
}

TEST(StratifiedEvalTest, BucketsPartitionTheOverallCounts) {
  llm::SimLlm model = TinyModel();
  data::Dataset dataset =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.04).test;
  StratifiedEvalResult result = EvaluateByCornerCase(model, dataset);
  EXPECT_EQ(result.overall.counts.total(), dataset.size());
  EXPECT_EQ(result.corner.counts.total() + result.ordinary.counts.total(),
            result.overall.counts.total());
  EXPECT_EQ(result.corner.counts.true_positive +
                result.ordinary.counts.true_positive,
            result.overall.counts.true_positive);
}

TEST(StratifiedEvalTest, CornerBucketMatchesCornerCount) {
  llm::SimLlm model = TinyModel();
  data::Dataset dataset =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.04).test;
  StratifiedEvalResult result = EvaluateByCornerCase(model, dataset);
  EXPECT_EQ(result.corner.counts.total(), dataset.CountCornerCases());
}

TEST(StratifiedEvalTest, RespectsSubsample) {
  llm::SimLlm model = TinyModel();
  data::Dataset dataset =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.08).test;
  EvalOptions options;
  options.max_pairs = 50;
  StratifiedEvalResult result = EvaluateByCornerCase(model, dataset, options);
  EXPECT_LE(result.overall.counts.total(), 50);
}

}  // namespace
}  // namespace tailormatch::eval
