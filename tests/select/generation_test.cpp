#include "select/generation.h"

#include <gtest/gtest.h>

#include "select/filters.h"

namespace tailormatch::select {
namespace {

data::Dataset SeedSet() {
  return data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.1).train;
}

TEST(GenerationTest, ProducesFourPerSeed) {
  data::Dataset seeds = SeedSet();
  GenerationOptions options;
  options.method = GenerationMethod::kDetailed;
  std::vector<data::EntityPair> generated =
      GenerateExamples(seeds.pairs, data::GetBenchmarkSpec(
                                        data::BenchmarkId::kWdcSmall),
                       options);
  EXPECT_EQ(generated.size(), seeds.pairs.size() * 4);
}

TEST(GenerationTest, LabelRatioRoughlyOneToThree) {
  data::Dataset seeds = SeedSet();
  GenerationOptions options;
  std::vector<data::EntityPair> generated =
      GenerateExamples(seeds.pairs, data::GetBenchmarkSpec(
                                        data::BenchmarkId::kWdcSmall),
                       options);
  int positives = 0;
  for (const data::EntityPair& pair : generated) {
    positives += pair.label ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(positives) / generated.size(), 0.25, 0.02);
}

TEST(GenerationTest, BriefMethodHasMoreLabelErrors) {
  // Section 5.2's inspection: the brief prompt "often produces matching
  // examples that are easy non-matches".
  data::Dataset seeds = SeedSet();
  const data::BenchmarkSpec spec =
      data::GetBenchmarkSpec(data::BenchmarkId::kWdcSmall);
  auto mislabel_rate = [&](GenerationMethod method) {
    GenerationOptions options;
    options.method = method;
    std::vector<data::EntityPair> generated =
        GenerateExamples(seeds.pairs, spec, options);
    int wrong = 0, positives = 0;
    for (const data::EntityPair& pair : generated) {
      if (!pair.label) continue;
      ++positives;
      if (pair.left.entity_id != pair.right.entity_id) ++wrong;
    }
    return static_cast<double>(wrong) / positives;
  };
  EXPECT_GT(mislabel_rate(GenerationMethod::kBrief),
            mislabel_rate(GenerationMethod::kDemonstration));
}

TEST(GenerationTest, GeneratedEntitiesAreFresh) {
  // Generated pairs must not collide with real benchmark entity ids.
  data::Dataset seeds = SeedSet();
  GenerationOptions options;
  std::vector<data::EntityPair> generated =
      GenerateExamples(seeds.pairs, data::GetBenchmarkSpec(
                                        data::BenchmarkId::kWdcSmall),
                       options);
  std::set<uint64_t> seed_ids;
  for (const data::EntityPair& pair : seeds.pairs) {
    seed_ids.insert(pair.left.entity_id);
    seed_ids.insert(pair.right.entity_id);
  }
  for (const data::EntityPair& pair : generated) {
    EXPECT_EQ(seed_ids.count(pair.left.entity_id), 0u);
  }
}

TEST(GenerationTest, SyntheticSetIncludesSeedsAndScalesUp) {
  data::Dataset seeds = SeedSet();
  data::Dataset synthetic = BuildSyntheticSet(
      seeds, data::GetBenchmarkSpec(data::BenchmarkId::kWdcSmall));
  // Table 4: Syn is ~8x the seed set (20,140 vs 2,500).
  const double ratio =
      static_cast<double>(synthetic.size()) / seeds.size();
  EXPECT_GT(ratio, 6.5);
  EXPECT_LT(ratio, 9.5);
}

TEST(GenerationTest, SynFilteredShrinksLikeTable4) {
  // Table 4: Syn 20,140 -> Syn-filtered 13,824 (~69%) -> Syn-filtered-rel
  // 8,900 (~64% of that).
  data::Dataset seeds = SeedSet();
  data::Dataset synthetic = BuildSyntheticSet(
      seeds, data::GetBenchmarkSpec(data::BenchmarkId::kWdcSmall));
  llm::TeacherLlm teacher;
  data::Dataset filtered = ErrorBasedFilter(synthetic, teacher);
  data::Dataset relevant = RelevancyFilter(filtered, teacher);
  const double keep1 = static_cast<double>(filtered.size()) / synthetic.size();
  const double keep2 = static_cast<double>(relevant.size()) / filtered.size();
  EXPECT_GT(keep1, 0.5);
  EXPECT_LT(keep1, 0.95);
  EXPECT_GT(keep2, 0.3);
  EXPECT_LT(keep2, 0.95);
}

TEST(GenerationTest, DeterministicForSeed) {
  data::Dataset seeds = SeedSet();
  GenerationOptions options;
  options.seed = 77;
  auto a = GenerateExamples(seeds.pairs,
                            data::GetBenchmarkSpec(
                                data::BenchmarkId::kWdcSmall),
                            options);
  auto b = GenerateExamples(seeds.pairs,
                            data::GetBenchmarkSpec(
                                data::BenchmarkId::kWdcSmall),
                            options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].left.surface, b[i].left.surface);
    EXPECT_EQ(a[i].label, b[i].label);
  }
}

TEST(GenerationTest, MethodNames) {
  EXPECT_STREQ(GenerationMethodName(GenerationMethod::kBrief), "brief");
  EXPECT_STREQ(GenerationMethodName(GenerationMethod::kDetailed), "detailed");
  EXPECT_STREQ(GenerationMethodName(GenerationMethod::kDemonstration),
               "demonstration");
}

}  // namespace
}  // namespace tailormatch::select
