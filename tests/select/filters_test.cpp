#include "select/filters.h"

#include <gtest/gtest.h>

#include "data/benchmark_factory.h"

namespace tailormatch::select {
namespace {

TEST(FiltersTest, ErrorBasedFilterRemovesMislabeledPairs) {
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.2);
  llm::TeacherLlm teacher;
  data::Dataset filtered = ErrorBasedFilter(benchmark.train, teacher);
  EXPECT_LT(filtered.size(), benchmark.train.size());
  EXPECT_GT(filtered.size(), benchmark.train.size() / 2);

  // The fraction of noise-flipped labels must drop after filtering.
  auto noise_rate = [](const data::Dataset& dataset) {
    int noisy = 0;
    for (const data::EntityPair& pair : dataset.pairs) {
      if (pair.label != (pair.left.entity_id == pair.right.entity_id)) {
        ++noisy;
      }
    }
    return static_cast<double>(noisy) / dataset.size();
  };
  EXPECT_LT(noise_rate(filtered), noise_rate(benchmark.train));
}

TEST(FiltersTest, RelevancyFilterKeepsCornerCases) {
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.2);
  llm::TeacherLlm teacher;
  data::Dataset filtered = RelevancyFilter(benchmark.train, teacher);
  EXPECT_LT(filtered.size(), benchmark.train.size());
  // "Interesting" pairs are predominantly corner-case-like; the easy
  // negatives (random product vs random product) are what gets dropped.
  const double corner_before =
      static_cast<double>(benchmark.train.CountCornerCases()) /
      benchmark.train.size();
  const double corner_after =
      static_cast<double>(filtered.CountCornerCases()) / filtered.size();
  EXPECT_GT(corner_after, corner_before);
}

TEST(FiltersTest, RelevancyAfterErrorFilterShrinksFurther) {
  // The paper's WDC-filtered-rel: 2500 -> 2006 -> 608.
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.2);
  llm::TeacherLlm teacher;
  data::Dataset filtered = ErrorBasedFilter(benchmark.train, teacher);
  data::Dataset relevant = RelevancyFilter(filtered, teacher);
  EXPECT_LT(relevant.size(), filtered.size());
  EXPECT_GT(relevant.size(), 0);
}

TEST(FiltersTest, FilterPreservesDomainAndNames) {
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kDblpAcm, 0.05);
  llm::TeacherLlm teacher;
  data::Dataset filtered = ErrorBasedFilter(benchmark.train, teacher);
  EXPECT_EQ(filtered.domain, data::Domain::kScholar);
  EXPECT_NE(filtered.name.find("filtered"), std::string::npos);
}

TEST(FiltersTest, EmptyInputYieldsEmptyOutput) {
  data::Dataset empty;
  llm::TeacherLlm teacher;
  EXPECT_EQ(ErrorBasedFilter(empty, teacher).size(), 0);
  EXPECT_EQ(RelevancyFilter(empty, teacher).size(), 0);
}

}  // namespace
}  // namespace tailormatch::select
