#include "select/active.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/benchmark_factory.h"

namespace tailormatch::select {
namespace {

llm::SimLlm TinyModel() {
  std::vector<std::string> corpus = {
      "do the two entity descriptions refer to the same real-world product",
      "entity 1: alpha beta 12 entity 2: gamma delta 34",
  };
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1500, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  return llm::SimLlm(config, std::move(tokenizer));
}

TEST(ActiveSelectionTest, RankingIsByUncertainty) {
  llm::SimLlm model = TinyModel();
  data::Dataset pool =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.04).train;
  UncertaintySelectionOptions options;
  std::vector<int> order = RankPoolByUncertainty(model, pool.pairs, options);
  ASSERT_EQ(order.size(), pool.pairs.size());
  auto uncertainty = [&](int index) {
    const double p = model.PredictMatchProbability(prompt::RenderPrompt(
        options.prompt_template, pool.pairs[static_cast<size_t>(index)]));
    return std::abs(p - 0.5);
  };
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(uncertainty(order[i - 1]), uncertainty(order[i]) + 1e-12);
  }
}

TEST(ActiveSelectionTest, RankingIsAPermutation) {
  llm::SimLlm model = TinyModel();
  data::Dataset pool =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.04).train;
  std::vector<int> order =
      RankPoolByUncertainty(model, pool.pairs, UncertaintySelectionOptions{});
  std::set<int> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), pool.pairs.size());
}

TEST(ActiveSelectionTest, BudgetRespected) {
  llm::SimLlm model = TinyModel();
  data::Dataset pool =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.04).train;
  UncertaintySelectionOptions options;
  options.budget = 10;
  std::vector<data::EntityPair> selected =
      SelectUncertainExamples(model, pool.pairs, options);
  EXPECT_EQ(selected.size(), 10u);
}

TEST(ActiveSelectionTest, BudgetLargerThanPool) {
  llm::SimLlm model = TinyModel();
  data::Dataset pool =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.02).train;
  UncertaintySelectionOptions options;
  options.budget = 1000000;
  EXPECT_EQ(SelectUncertainExamples(model, pool.pairs, options).size(),
            pool.pairs.size());
}

}  // namespace
}  // namespace tailormatch::select
