#include <gtest/gtest.h>

#include "core/fine_tuner.h"
#include "data/benchmark_factory.h"

namespace tailormatch::core {
namespace {

llm::FamilyProfile TinyProfile() {
  llm::FamilyProfile profile =
      llm::GetFamilyProfile(llm::ModelFamily::kLlama8B);
  profile.config.dim = 16;
  profile.config.num_heads = 2;
  profile.config.num_layers = 1;
  profile.lora_rank = 4;
  profile.finetune_lr = 5e-3f;
  profile.finetune_epochs = 2;
  return profile;
}

std::unique_ptr<llm::SimLlm> TinyZeroShot(const llm::FamilyProfile& profile,
                                          const data::Benchmark& benchmark) {
  std::vector<std::string> corpus;
  for (const data::EntityPair& pair : benchmark.train.pairs) {
    corpus.push_back(
        prompt::RenderPrompt(prompt::PromptTemplate::kDefault, pair));
  }
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 3000, 1);
  return std::make_unique<llm::SimLlm>(profile.config, std::move(tokenizer));
}

TEST(ReplayTest, ReplayRunsAndProducesModel) {
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.04);
  llm::FamilyProfile profile = TinyProfile();
  auto zero_shot = TinyZeroShot(profile, benchmark);
  FineTuner tuner(profile);
  FineTuneOptions options;
  options.replay_fraction = 0.3;
  options.valid_max_pairs = 80;
  FineTuneResult result =
      tuner.Run(*zero_shot, benchmark.train, benchmark.valid, options);
  ASSERT_NE(result.model, nullptr);
  EXPECT_FALSE(result.model->lora_enabled());
}

TEST(ReplayTest, ReplayChangesTrainingOutcome) {
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.04);
  llm::FamilyProfile profile = TinyProfile();
  auto zero_shot = TinyZeroShot(profile, benchmark);
  FineTuner tuner(profile);

  FineTuneOptions plain;
  plain.valid_max_pairs = 0;
  FineTuneOptions replay = plain;
  replay.replay_fraction = 0.5;

  auto plain_model =
      tuner.Run(*zero_shot, benchmark.train, data::Dataset{}, plain).model;
  auto replay_model =
      tuner.Run(*zero_shot, benchmark.train, data::Dataset{}, replay).model;
  const std::string probe = prompt::RenderPrompt(
      prompt::PromptTemplate::kDefault, benchmark.test.pairs.front());
  EXPECT_NE(plain_model->PredictMatchProbability(probe),
            replay_model->PredictMatchProbability(probe));
}

TEST(FullFineTuningTest, TrainsAllParameters) {
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kAbtBuy, 0.02);
  llm::FamilyProfile profile = TinyProfile();
  auto zero_shot = TinyZeroShot(profile, benchmark);
  auto backbone_before = zero_shot->SnapshotState();
  FineTuner tuner(profile);
  FineTuneOptions options;
  options.full_fine_tuning = true;
  options.epochs = 1;
  options.valid_max_pairs = 0;
  FineTuneResult result =
      tuner.Run(*zero_shot, benchmark.train, data::Dataset{}, options);
  // The fine-tuned copy's backbone weights must differ from the zero-shot
  // model's (full fine-tuning updates everything).
  auto tuned_state = result.model->SnapshotState();
  ASSERT_EQ(tuned_state.size(), backbone_before.size());
  bool any_changed = false;
  for (size_t i = 0; i < tuned_state.size(); ++i) {
    if (tuned_state[i] != backbone_before[i]) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
  // Token embedding (first tensor) must have moved - LoRA would freeze it.
  EXPECT_NE(tuned_state[0], backbone_before[0]);
}

}  // namespace
}  // namespace tailormatch::core
