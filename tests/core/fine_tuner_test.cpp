#include "core/fine_tuner.h"

#include <gtest/gtest.h>

#include "data/benchmark_factory.h"
#include "eval/evaluator.h"

namespace tailormatch::core {
namespace {

llm::FamilyProfile TinyProfile() {
  llm::FamilyProfile profile = llm::GetFamilyProfile(llm::ModelFamily::kLlama8B);
  profile.config.dim = 16;
  profile.config.num_heads = 2;
  profile.config.num_layers = 1;
  profile.lora_rank = 4;
  profile.finetune_lr = 5e-3f;
  profile.finetune_epochs = 3;
  return profile;
}

std::unique_ptr<llm::SimLlm> TinyZeroShot(const llm::FamilyProfile& profile,
                                          const data::Benchmark& benchmark) {
  std::vector<std::string> corpus;
  for (const data::EntityPair& pair : benchmark.train.pairs) {
    corpus.push_back(prompt::RenderPrompt(prompt::PromptTemplate::kDefault,
                                          pair));
  }
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 3000, 1);
  return std::make_unique<llm::SimLlm>(profile.config, std::move(tokenizer));
}

TEST(FineTunerTest, ImprovesOverRandomInit) {
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.08);
  llm::FamilyProfile profile = TinyProfile();
  auto zero_shot = TinyZeroShot(profile, benchmark);
  FineTuner tuner(profile);
  FineTuneOptions options;
  options.valid_max_pairs = 150;
  FineTuneResult result = tuner.Run(*zero_shot, benchmark.train,
                                    benchmark.valid, options);
  eval::EvalOptions eval_options;
  eval_options.max_pairs = 300;
  const double before = eval::EvaluateF1(*zero_shot, benchmark.test,
                                         eval_options);
  const double after = eval::EvaluateF1(*result.model, benchmark.test,
                                        eval_options);
  EXPECT_GT(after, before);
  EXPECT_FALSE(result.model->lora_enabled());  // adapters merged
}

TEST(FineTunerTest, StatsTrackEpochs) {
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kAbtBuy, 0.03);
  llm::FamilyProfile profile = TinyProfile();
  auto zero_shot = TinyZeroShot(profile, benchmark);
  FineTuner tuner(profile);
  FineTuneOptions options;
  options.epochs = 2;
  options.valid_max_pairs = 80;
  FineTuneResult result = tuner.Run(*zero_shot, benchmark.train,
                                    benchmark.valid, options);
  EXPECT_EQ(result.stats.epoch_train_loss.size(), 2u);
  EXPECT_EQ(result.stats.epoch_valid_score.size(), 2u);
  EXPECT_GE(result.stats.best_epoch, 0);
}

TEST(FineTunerTest, ZeroShotModelUntouched) {
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kAbtBuy, 0.03);
  llm::FamilyProfile profile = TinyProfile();
  auto zero_shot = TinyZeroShot(profile, benchmark);
  auto before = zero_shot->SnapshotState();
  FineTuner tuner(profile);
  FineTuneOptions options;
  options.epochs = 1;
  tuner.Run(*zero_shot, benchmark.train, benchmark.valid, options);
  auto after = zero_shot->SnapshotState();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) EXPECT_EQ(before[i], after[i]);
}

TEST(FineTunerTest, BuildExamplesAppliesExplanations) {
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kAbtBuy, 0.03);
  llm::FamilyProfile profile = TinyProfile();
  auto model = TinyZeroShot(profile, benchmark);
  auto plain = FineTuner::BuildExamples(*model, benchmark.train.pairs,
                                        prompt::PromptTemplate::kDefault,
                                        explain::ExplanationStyle::kNone);
  auto structured = FineTuner::BuildExamples(
      *model, benchmark.train.pairs, prompt::PromptTemplate::kDefault,
      explain::ExplanationStyle::kStructured);
  auto textual = FineTuner::BuildExamples(
      *model, benchmark.train.pairs, prompt::PromptTemplate::kDefault,
      explain::ExplanationStyle::kWadhwa);
  ASSERT_EQ(plain.size(), structured.size());
  EXPECT_FALSE(plain[0].has_attr_targets);
  EXPECT_TRUE(structured[0].has_attr_targets);
  EXPECT_TRUE(textual[0].has_text_targets);
  // Token sequences are identical across styles; the supervision differs.
  EXPECT_EQ(plain[0].tokens, structured[0].tokens);
}

TEST(FineTunerTest, PromptTemplateChangesTokens) {
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kAbtBuy, 0.03);
  llm::FamilyProfile profile = TinyProfile();
  auto model = TinyZeroShot(profile, benchmark);
  auto default_examples = FineTuner::BuildExamples(
      *model, benchmark.train.pairs, prompt::PromptTemplate::kDefault,
      explain::ExplanationStyle::kNone);
  auto simple_examples = FineTuner::BuildExamples(
      *model, benchmark.train.pairs, prompt::PromptTemplate::kSimpleFree,
      explain::ExplanationStyle::kNone);
  EXPECT_NE(default_examples[0].tokens, simple_examples[0].tokens);
}

}  // namespace
}  // namespace tailormatch::core
