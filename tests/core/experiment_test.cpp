#include "core/experiment.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace tailormatch::core {
namespace {

TEST(ExperimentContextTest, EnvOverrides) {
  setenv("TM_SCALE", "0.5", 1);
  setenv("TM_EVAL_MAX", "123", 1);
  setenv("TM_EPOCHS", "3", 1);
  ExperimentContext context = ExperimentContext::FromEnv();
  EXPECT_DOUBLE_EQ(context.data_scale, 0.5);
  EXPECT_EQ(context.eval_max_pairs, 123);
  EXPECT_EQ(context.epochs_override, 3);
  unsetenv("TM_SCALE");
  unsetenv("TM_EVAL_MAX");
  unsetenv("TM_EPOCHS");
}

TEST(ExperimentContextTest, Defaults) {
  unsetenv("TM_SCALE");
  unsetenv("TM_EVAL_MAX");
  ExperimentContext context = ExperimentContext::FromEnv();
  EXPECT_GT(context.data_scale, 0.0);
  EXPECT_GT(context.eval_max_pairs, 0);
}

TEST(BenchmarkCacheTest, ReturnsSameObject) {
  BenchmarkCache cache(0.05);
  const data::Benchmark& a = cache.Get(data::BenchmarkId::kAbtBuy);
  const data::Benchmark& b = cache.Get(data::BenchmarkId::kAbtBuy);
  EXPECT_EQ(&a, &b);
}

TEST(TransferGainTest, MatchesPaperExample) {
  // Table 2, Llama 8B / WDC row: model gains (A-B +25.21, A-G +3.13,
  // W-A +11.70) over zero-shot; specialized gains (+30.77, +0.84, +23.61);
  // transfer gain = 13.35 / 18.41 = 72%.
  using data::BenchmarkId;
  std::map<BenchmarkId, double> zero = {{BenchmarkId::kAbtBuy, 56.57},
                                        {BenchmarkId::kAmazonGoogle, 49.16},
                                        {BenchmarkId::kWalmartAmazon, 42.04}};
  std::map<BenchmarkId, double> model = {{BenchmarkId::kAbtBuy, 81.78},
                                         {BenchmarkId::kAmazonGoogle, 52.29},
                                         {BenchmarkId::kWalmartAmazon, 53.74}};
  std::map<BenchmarkId, double> specialized = {
      {BenchmarkId::kAbtBuy, 87.34},
      {BenchmarkId::kAmazonGoogle, 50.00},
      {BenchmarkId::kWalmartAmazon, 65.65}};
  const double gain = ComputeTransferGain(
      {BenchmarkId::kAbtBuy, BenchmarkId::kAmazonGoogle,
       BenchmarkId::kWalmartAmazon},
      model, zero, specialized);
  EXPECT_NEAR(gain, 72.0, 1.0);
}

TEST(TransferGainTest, NegativeWhenModelRegresses) {
  using data::BenchmarkId;
  std::map<BenchmarkId, double> zero = {{BenchmarkId::kDblpAcm, 85.52},
                                        {BenchmarkId::kDblpScholar, 67.69}};
  std::map<BenchmarkId, double> model = {{BenchmarkId::kDblpAcm, 79.60},
                                         {BenchmarkId::kDblpScholar, 42.89}};
  std::map<BenchmarkId, double> specialized = {
      {BenchmarkId::kDblpAcm, 97.42}, {BenchmarkId::kDblpScholar, 92.95}};
  const double gain =
      ComputeTransferGain({BenchmarkId::kDblpAcm, BenchmarkId::kDblpScholar},
                          model, zero, specialized);
  EXPECT_NEAR(gain, -83.0, 2.0);  // the paper's -83% row
}

TEST(TargetsTest, InDomainExcludesSource) {
  std::vector<data::BenchmarkId> targets =
      InDomainTargets(data::BenchmarkId::kWdcSmall);
  EXPECT_EQ(targets.size(), 3u);
  for (data::BenchmarkId id : targets) {
    EXPECT_NE(id, data::BenchmarkId::kWdcSmall);
    EXPECT_EQ(data::BenchmarkDomain(id), data::Domain::kProduct);
  }
}

TEST(TargetsTest, CrossDomainIsOtherDomain) {
  std::vector<data::BenchmarkId> targets =
      CrossDomainTargets(data::BenchmarkId::kWdcSmall);
  EXPECT_EQ(targets.size(), 2u);
  for (data::BenchmarkId id : targets) {
    EXPECT_EQ(data::BenchmarkDomain(id), data::Domain::kScholar);
  }
  std::vector<data::BenchmarkId> product_targets =
      CrossDomainTargets(data::BenchmarkId::kDblpAcm);
  EXPECT_EQ(product_targets.size(), 4u);
}

}  // namespace
}  // namespace tailormatch::core
