#include "core/batch_matcher.h"

#include <gtest/gtest.h>

#include "data/benchmark_factory.h"

namespace tailormatch::core {
namespace {

std::shared_ptr<llm::SimLlm> TinyModel() {
  std::vector<std::string> corpus = {
      "do the two entity descriptions refer to the same real-world product",
      "entity 1: alpha 12 entity 2: beta 34",
  };
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1500, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  return std::make_shared<llm::SimLlm>(config, std::move(tokenizer));
}

TEST(BatchMatcherTest, MatchesAllPairsInOrder) {
  auto model = TinyModel();
  data::Dataset dataset =
      data::BuildBenchmark(data::BenchmarkId::kAbtBuy, 0.03).test;
  BatchMatcher batch(model, prompt::PromptTemplate::kDefault, 4);
  std::vector<MatchDecision> decisions = batch.MatchAll(dataset.pairs);
  ASSERT_EQ(decisions.size(), dataset.pairs.size());

  // Results must agree with sequential single-pair matching.
  Matcher matcher(model);
  for (size_t i = 0; i < dataset.pairs.size(); i += 7) {
    MatchDecision sequential = matcher.Match(dataset.pairs[i]);
    EXPECT_DOUBLE_EQ(decisions[i].probability, sequential.probability);
    EXPECT_EQ(decisions[i].is_match, sequential.is_match);
  }
}

TEST(BatchMatcherTest, SingleThreadFallback) {
  auto model = TinyModel();
  data::Dataset dataset =
      data::BuildBenchmark(data::BenchmarkId::kAbtBuy, 0.02).test;
  BatchMatcher batch(model, prompt::PromptTemplate::kDefault, 1);
  EXPECT_EQ(batch.MatchAll(dataset.pairs).size(), dataset.pairs.size());
}

TEST(BatchMatcherTest, EmptyInput) {
  BatchMatcher batch(TinyModel());
  EXPECT_TRUE(batch.MatchAll({}).empty());
}

TEST(BatchMatcherTest, DefaultsToHardwareConcurrency) {
  BatchMatcher batch(TinyModel());
  EXPECT_GE(batch.num_threads(), 1);
}

}  // namespace
}  // namespace tailormatch::core
