#include "core/matcher.h"

#include <gtest/gtest.h>

namespace tailormatch::core {
namespace {

std::shared_ptr<llm::SimLlm> TinyModel() {
  std::vector<std::string> corpus = {
      "do the two entity descriptions refer to the same real-world product",
      "entity 1: jabra evolve 80 entity 2: sram pg 730",
  };
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1500, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  return std::make_shared<llm::SimLlm>(config, std::move(tokenizer));
}

TEST(MatcherTest, DecisionConsistentWithProbability) {
  Matcher matcher(TinyModel());
  MatchDecision decision =
      matcher.Match("jabra evolve 80", "jabra evolve 80 stereo");
  EXPECT_TRUE(decision.parseable);
  EXPECT_EQ(decision.is_match, decision.probability > 0.5);
}

TEST(MatcherTest, ResponseIsNaturalLanguage) {
  Matcher matcher(TinyModel());
  MatchDecision decision = matcher.Match("a", "b");
  EXPECT_FALSE(decision.response.empty());
  EXPECT_TRUE(decision.response.find("Yes") != std::string::npos ||
              decision.response.find("No") != std::string::npos);
}

TEST(MatcherTest, EntityOverloadUsesSurfaces) {
  Matcher matcher(TinyModel());
  data::Entity left;
  left.surface = "jabra evolve 80";
  left.domain = data::Domain::kProduct;
  data::Entity right = left;
  MatchDecision by_entity = matcher.Match(left, right);
  MatchDecision by_string = matcher.Match("jabra evolve 80", "jabra evolve 80");
  EXPECT_DOUBLE_EQ(by_entity.probability, by_string.probability);
}

TEST(MatcherTest, PromptTemplateAffectsInput) {
  auto model = TinyModel();
  Matcher default_matcher(model, prompt::PromptTemplate::kDefault);
  Matcher simple_matcher(model, prompt::PromptTemplate::kSimpleFree);
  EXPECT_EQ(default_matcher.prompt_template(),
            prompt::PromptTemplate::kDefault);
  EXPECT_EQ(simple_matcher.prompt_template(),
            prompt::PromptTemplate::kSimpleFree);
  // Different templates feed different token sequences; for an untrained
  // model the probabilities typically differ.
  MatchDecision a = default_matcher.Match("jabra evolve 80", "sram pg 730");
  MatchDecision b = simple_matcher.Match("jabra evolve 80", "sram pg 730");
  EXPECT_GE(a.probability, 0.0);
  EXPECT_GE(b.probability, 0.0);
}

TEST(MatcherTest, Deterministic) {
  Matcher matcher(TinyModel());
  MatchDecision a = matcher.Match("x 12", "y 34");
  MatchDecision b = matcher.Match("x 12", "y 34");
  EXPECT_DOUBLE_EQ(a.probability, b.probability);
  EXPECT_EQ(a.is_match, b.is_match);
}

}  // namespace
}  // namespace tailormatch::core
