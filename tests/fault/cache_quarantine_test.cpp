// CachedFineTune must never let one corrupted cache file wedge a run: the
// unreadable file is moved aside to "<path>.corrupt", the fine-tune reruns,
// and a clean checkpoint replaces the bad one.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "obs/metrics.h"
#include "tiny_model.h"

namespace tailormatch::core {
namespace {

int64_t CounterValue(const std::string& name) {
  for (const auto& [counter, value] :
       obs::MetricsRegistry::Global().Snapshot().counters) {
    if (counter == name) return value;
  }
  return 0;
}

TEST(CacheQuarantineTest, CorruptedCacheIsQuarantinedAndRebuilt) {
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "tm_quarantine_test")
          .string();
  std::filesystem::remove_all(cache_dir);

  ExperimentContext context;
  context.cache_dir = cache_dir;
  context.data_scale = 0.05;
  context.valid_max_pairs = 40;
  const llm::FamilyProfile profile =
      llm::GetFamilyProfile(llm::ModelFamily::kLlama8B);
  llm::SimLlm zero_shot = fault_test::MakeTinyModel();
  data::Benchmark bench =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.05);
  FineTuneOptions options;
  options.epochs = 1;
  options.valid_max_pairs = 40;

  // Fresh run populates the cache and reports stats.
  llm::TrainStats stats;
  auto first = CachedFineTune(context, profile, zero_shot, bench.train,
                              bench.valid, options, "quarantine-test", &stats);
  ASSERT_NE(first, nullptr);
  ASSERT_EQ(stats.epoch_train_loss.size(), 1u);

  // Find the committed cache file and stomp it.
  std::string ckpt;
  for (const auto& entry : std::filesystem::directory_iterator(cache_dir)) {
    if (entry.path().extension() == ".ckpt") ckpt = entry.path().string();
  }
  ASSERT_FALSE(ckpt.empty());
  {
    std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
    out << "garbage that is definitely not a checkpoint";
  }

  // Second call: quarantine + retrain.
  const int64_t quarantined_before = CounterValue("cache.quarantined");
  llm::TrainStats retrained;
  auto second =
      CachedFineTune(context, profile, zero_shot, bench.train, bench.valid,
                     options, "quarantine-test", &retrained);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(retrained.epoch_train_loss.size(), 1u);  // a fresh run happened
  EXPECT_EQ(CounterValue("cache.quarantined"), quarantined_before + 1);
  EXPECT_TRUE(std::filesystem::exists(ckpt + ".corrupt"));
  EXPECT_TRUE(std::filesystem::exists(ckpt));  // clean replacement committed

  // Third call: plain cache hit — stats stay untouched.
  llm::TrainStats sentinel;
  sentinel.rollbacks = -99;
  auto third =
      CachedFineTune(context, profile, zero_shot, bench.train, bench.valid,
                     options, "quarantine-test", &sentinel);
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(sentinel.rollbacks, -99);
  EXPECT_TRUE(sentinel.epoch_train_loss.empty());

  std::filesystem::remove_all(cache_dir);
}

}  // namespace
}  // namespace tailormatch::core
