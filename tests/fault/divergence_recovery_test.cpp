// Divergence recovery: an injected non-finite loss mid-training must trigger
// a rollback to the last completed epoch, a learning-rate backoff, and a
// retry — and the recovered run must end as accurate as a fault-free one.

#include <cmath>

#include <gtest/gtest.h>

#include "llm/trainer.h"
#include "tiny_model.h"
#include "util/fault.h"

namespace tailormatch::llm {
namespace {

class DivergenceRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }

  static TrainOptions Options() {
    TrainOptions options;
    options.epochs = 12;
    options.batch_size = 8;
    options.learning_rate = 5e-3f;
    options.seed = 3;
    options.max_rollbacks = 3;
    options.lr_backoff = 0.5f;
    return options;
  }

  static TrainStats Train(SimLlm& model) {
    const auto examples = fault_test::KeywordExamples(model);
    return TrainModel(model, examples, Options());
  }
};

TEST_F(DivergenceRecoveryTest, FaultFreeRunTakesNoRollbacks) {
  SimLlm model = fault_test::MakeTinyModel();
  TrainStats stats = Train(model);
  EXPECT_EQ(stats.rollbacks, 0);
  EXPECT_FLOAT_EQ(stats.final_learning_rate, 5e-3f);
  EXPECT_EQ(stats.epoch_train_loss.size(), 12u);
}

TEST_F(DivergenceRecoveryTest, NanLossRollsBackHalvesLrAndStillConverges) {
  // Baseline for the accuracy comparison.
  SimLlm baseline = fault_test::MakeTinyModel();
  Train(baseline);
  const double baseline_accuracy = fault_test::KeywordAccuracy(baseline);

  // Poison one loss partway through training (the 25th example of ~60 per
  // epoch) — the spike a real fp blow-up produces.
  fault::FaultSpec spec;
  spec.point = "trainer.loss";
  spec.mode = fault::FaultMode::kNan;
  spec.nth = 25;
  fault::ScopedFault fault(spec);
  SimLlm model = fault_test::MakeTinyModel();
  TrainStats stats = Train(model);

  EXPECT_EQ(stats.rollbacks, 1);
  EXPECT_FLOAT_EQ(stats.final_learning_rate, 2.5e-3f);  // one halving
  // All epochs completed despite the retry.
  EXPECT_EQ(stats.epoch_train_loss.size(), 12u);
  for (double loss : stats.epoch_train_loss) {
    EXPECT_TRUE(std::isfinite(loss));
  }
  // Acceptance bar: the recovered run lands within one point of fault-free.
  const double recovered_accuracy = fault_test::KeywordAccuracy(model);
  EXPECT_GE(recovered_accuracy, baseline_accuracy - 0.01);
}

TEST_F(DivergenceRecoveryTest, PersistentDivergenceExhaustsBudgetAndStops) {
  // Every loss evaluation diverges: the trainer must retry max_rollbacks
  // times, then keep the last good state and stop instead of looping.
  fault::FaultSpec spec;
  spec.point = "trainer.loss";
  spec.mode = fault::FaultMode::kNan;
  spec.nth = 0;  // every arrival
  fault::ScopedFault fault(spec);

  SimLlm model = fault_test::MakeTinyModel();
  const auto before = model.SnapshotState();
  const auto examples = fault_test::KeywordExamples(model);
  TrainOptions options = Options();
  options.max_rollbacks = 2;
  TrainStats stats = TrainModel(model, examples, options);

  EXPECT_EQ(stats.rollbacks, 2);
  EXPECT_TRUE(stats.epoch_train_loss.empty());  // no epoch ever completed
  // Two halvings were attempted before giving up.
  EXPECT_FLOAT_EQ(stats.final_learning_rate, 5e-3f * 0.25f);
  // The model was left at the last good state — here the initial weights.
  const auto after = model.SnapshotState();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i], before[i]) << "tensor " << i;
  }
}

TEST_F(DivergenceRecoveryTest, RecoveryIsDeterministic) {
  // The same fault at the same point must yield bit-identical weights on
  // every run — recovery is part of the deterministic training contract.
  const auto run = [] {
    fault::FaultSpec spec;
    spec.point = "trainer.loss";
    spec.mode = fault::FaultMode::kNan;
    spec.nth = 25;
    fault::ScopedFault fault(spec);
    SimLlm model = fault_test::MakeTinyModel();
    const auto examples = fault_test::KeywordExamples(model);
    TrainOptions options = Options();
    options.epochs = 3;
    TrainStats stats = TrainModel(model, examples, options);
    EXPECT_EQ(stats.rollbacks, 1);
    return model.SnapshotState();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "tensor " << i;
  }
}

TEST_F(DivergenceRecoveryTest, ParallelRecoveryMatchesSerial) {
  // The divergence-rollback contract survives data-parallel training: the
  // same injected NaN must produce the same rollback count, the same LR
  // backoff, and bit-identical recovered weights at every worker count.
  const auto run = [](int threads) {
    fault::FaultSpec spec;
    spec.point = "trainer.loss";
    spec.mode = fault::FaultMode::kNan;
    spec.nth = 25;
    fault::ScopedFault fault(spec);
    SimLlm model = fault_test::MakeTinyModel();
    const auto examples = fault_test::KeywordExamples(model);
    TrainOptions options = Options();
    options.epochs = 3;
    options.num_threads = threads;
    TrainStats stats = TrainModel(model, examples, options);
    return std::make_pair(stats, model.SnapshotState());
  };
  const auto [serial_stats, serial_state] = run(1);
  EXPECT_EQ(serial_stats.rollbacks, 1);
  for (int threads : {2, 8}) {
    const auto [stats, state] = run(threads);
    EXPECT_EQ(stats.rollbacks, serial_stats.rollbacks) << threads;
    EXPECT_EQ(stats.final_learning_rate, serial_stats.final_learning_rate)
        << threads;
    ASSERT_EQ(stats.epoch_train_loss.size(),
              serial_stats.epoch_train_loss.size());
    for (size_t e = 0; e < stats.epoch_train_loss.size(); ++e) {
      EXPECT_EQ(stats.epoch_train_loss[e], serial_stats.epoch_train_loss[e])
          << threads << " epoch " << e;
    }
    ASSERT_EQ(state.size(), serial_state.size());
    for (size_t i = 0; i < state.size(); ++i) {
      EXPECT_EQ(state[i], serial_state[i])
          << threads << " threads, tensor " << i;
    }
  }
}

TEST_F(DivergenceRecoveryTest, ParallelBudgetExhaustionPreservesLastGoodState) {
  fault::FaultSpec spec;
  spec.point = "trainer.loss";
  spec.mode = fault::FaultMode::kNan;
  spec.nth = 0;  // every arrival
  fault::ScopedFault fault(spec);

  SimLlm model = fault_test::MakeTinyModel();
  const auto before = model.SnapshotState();
  const auto examples = fault_test::KeywordExamples(model);
  TrainOptions options = Options();
  options.max_rollbacks = 2;
  options.num_threads = 8;
  TrainStats stats = TrainModel(model, examples, options);

  EXPECT_EQ(stats.rollbacks, 2);
  EXPECT_TRUE(stats.epoch_train_loss.empty());
  const auto after = model.SnapshotState();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i], before[i]) << "tensor " << i;
  }
}

}  // namespace
}  // namespace tailormatch::llm
