// Checkpoint corruption fuzzing: a damaged checkpoint file must always be
// rejected with a non-ok Status — never crash the process, never load
// silently. Covers truncation at every early offset (all header and section
// boundaries live there) plus strided points through the weights, single-bit
// flips at sampled offsets, and forged frames whose payload is damaged but
// whose CRC has been recomputed (exercising the inner parser's own
// length-prefix validation).

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "llm/sim_llm.h"
#include "tiny_model.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace tailormatch {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class CheckpointFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process dir: parallel ctest runs each case in its own process,
    // and a shared path would let them trample each other's files.
    dir_ = (std::filesystem::temp_directory_path() /
            ("tm_ckpt_fuzz." + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
    good_path_ = dir_ + "/good.ckpt";
    llm::SimLlm model = fault_test::MakeTinyModel();
    ASSERT_TRUE(model.SaveCheckpoint(good_path_).ok());
    good_bytes_ = ReadFileBytes(good_path_);
    ASSERT_GT(good_bytes_.size(), 64u);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
  std::string good_path_;
  std::string good_bytes_;
};

TEST_F(CheckpointFuzzTest, IntactCheckpointLoads) {
  Result<std::unique_ptr<llm::SimLlm>> loaded =
      llm::SimLlm::LoadCheckpoint(good_path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST_F(CheckpointFuzzTest, TruncationAtEveryBoundaryRejected) {
  const std::string path = dir_ + "/truncated.ckpt";
  std::vector<size_t> cut_points;
  // Every offset through the frame header and the first sections (magic,
  // version, config scalars, vocab strings all start here)...
  for (size_t n = 0; n < 96 && n < good_bytes_.size(); ++n) {
    cut_points.push_back(n);
  }
  // ...then strided points through the weight tensors and the tail.
  for (size_t n = 96; n < good_bytes_.size(); n += 997) cut_points.push_back(n);
  for (size_t back = 1; back <= 8; ++back) {
    cut_points.push_back(good_bytes_.size() - back);
  }
  for (size_t n : cut_points) {
    WriteFileBytes(path, good_bytes_.substr(0, n));
    Result<std::unique_ptr<llm::SimLlm>> loaded =
        llm::SimLlm::LoadCheckpoint(path);
    EXPECT_FALSE(loaded.ok()) << "silent load of " << n << "-byte truncation";
  }
}

TEST_F(CheckpointFuzzTest, SampledBitFlipsAlwaysRejected) {
  const std::string path = dir_ + "/flipped.ckpt";
  Rng rng(0xf1ea5);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t byte =
        rng.NextBounded(static_cast<uint32_t>(good_bytes_.size()));
    const int bit = static_cast<int>(rng.NextBounded(8));
    std::string damaged = good_bytes_;
    damaged[byte] = static_cast<char>(
        static_cast<unsigned char>(damaged[byte]) ^ (1u << bit));
    WriteFileBytes(path, damaged);
    Result<std::unique_ptr<llm::SimLlm>> loaded =
        llm::SimLlm::LoadCheckpoint(path);
    // CRC-32 detects every single-bit error; header flips fail the
    // magic/version/length checks first.
    EXPECT_FALSE(loaded.ok())
        << "silent load with bit " << bit << " of byte " << byte << " flipped";
  }
}

// Forges a valid frame around `payload` (correct magic/version/length/CRC),
// so the inner checkpoint parser — not the frame check — sees the damage.
std::string ForgeFrame(const std::string& payload) {
  std::string framed;
  const uint32_t magic = 0x31464d54u;  // "TMF1"
  const uint32_t version = 1;
  const uint64_t length = payload.size();
  for (int i = 0; i < 4; ++i) framed.push_back(static_cast<char>(magic >> (8 * i)));
  for (int i = 0; i < 4; ++i) framed.push_back(static_cast<char>(version >> (8 * i)));
  for (int i = 0; i < 8; ++i) framed.push_back(static_cast<char>(length >> (8 * i)));
  framed.append(payload);
  const uint32_t crc = Crc32(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) framed.push_back(static_cast<char>(crc >> (8 * i)));
  return framed;
}

TEST_F(CheckpointFuzzTest, TruncatedPayloadBehindValidFrameRejected) {
  // A structurally damaged payload wrapped in a *valid* frame must still be
  // rejected by the inner parser (length-prefix validation, satellite of the
  // crash-safety work) — and must never crash or over-allocate.
  const std::string payload =
      good_bytes_.substr(16, good_bytes_.size() - 16 - 4);
  const std::string path = dir_ + "/forged.ckpt";
  std::vector<size_t> cut_points;
  for (size_t n = 0; n < 64 && n < payload.size(); ++n) cut_points.push_back(n);
  for (size_t n = 64; n < payload.size(); n += 1291) cut_points.push_back(n);
  for (size_t n : cut_points) {
    WriteFileBytes(path, ForgeFrame(payload.substr(0, n)));
    Result<std::unique_ptr<llm::SimLlm>> loaded =
        llm::SimLlm::LoadCheckpoint(path);
    EXPECT_FALSE(loaded.ok())
        << "silent load of " << n << "-byte payload behind a valid frame";
  }
}

TEST_F(CheckpointFuzzTest, LegacyUnframedCheckpointRejectedWithClearError) {
  // A pre-crash-safety checkpoint is the bare payload with no TMF1 frame;
  // its first bytes are the inner "TMCK" magic. The loader must name the
  // frame header in its error so the fix (regenerate) is obvious.
  const std::string path = dir_ + "/legacy.ckpt";
  WriteFileBytes(path, good_bytes_.substr(16, good_bytes_.size() - 16 - 4));
  Result<std::unique_ptr<llm::SimLlm>> loaded =
      llm::SimLlm::LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("frame header"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(CheckpointFuzzTest, UnsupportedFrameVersionRejected) {
  std::string damaged = good_bytes_;
  damaged[4] = 9;  // version field (little-endian u32 at offset 4)
  const std::string path = dir_ + "/future.ckpt";
  WriteFileBytes(path, damaged);
  Result<std::unique_ptr<llm::SimLlm>> loaded =
      llm::SimLlm::LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(CheckpointFuzzTest, EmptyAndGarbageFilesRejected) {
  const std::string path = dir_ + "/garbage.ckpt";
  WriteFileBytes(path, "");
  EXPECT_FALSE(llm::SimLlm::LoadCheckpoint(path).ok());
  WriteFileBytes(path, "this is not a checkpoint at all");
  EXPECT_FALSE(llm::SimLlm::LoadCheckpoint(path).ok());
}

}  // namespace
}  // namespace tailormatch
