// Subprocess flight-recorder harness: re-executes this binary as a helper
// that configures the crash flight recorder, records trace events, and then
// dies — via an injected TM_FAULT_* crash (the fault layer's crash hook) or
// a fatal signal (the recorder's own handlers). Either way the parent must
// find a parseable <dir>/flight.json holding the last trace events, and the
// helper must still die the way it would have without the recorder.
//
// Fresh exec rather than fork for the same reason as crash_recovery_test:
// the gtest process owns threads and sanitizer state by the time tests run.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/json.h"

namespace tailormatch {
namespace {

// Helper exit codes (distinct from fault::kCrashExitCode = 86).
constexpr int kHelperOk = 0;
constexpr int kHelperConfigureFailed = 7;
constexpr int kHelperSurvivedCrash = 9;

constexpr uint64_t kHelperTraceId = (uint64_t{1} << 40) + 99;

std::string SelfExe() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return "";
  buffer[n] = '\0';
  return buffer;
}

struct HelperResult {
  bool exited = false;     // WIFEXITED (false: killed by a signal)
  int exit_code = -1;
  bool signaled = false;
};

// Runs `<self> --helper-flight <dir> <death>` with `extra_env` prepended.
HelperResult RunFlightHelper(const std::string& dir, const std::string& death,
                             const std::string& extra_env = "") {
  const std::string command = extra_env + " '" + SelfExe() +
                              "' --helper-flight '" + dir + "' " + death;
  const int status = std::system(command.c_str());
  HelperResult result;
  result.exited = WIFEXITED(status);
  if (result.exited) result.exit_code = WEXITSTATUS(status);
  result.signaled = WIFSIGNALED(status);
  return result;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(SelfExe().empty());
    dir_ = (std::filesystem::temp_directory_path() /
            ("tm_flight_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()) +
             "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string FlightPath() const { return dir_ + "/flight.json"; }

  std::string ReadFlight() const {
    std::ifstream in(FlightPath());
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  // Asserts the dump is well formed — reason header plus per-event lines
  // that each parse as one flat JSON object — and returns the event count.
  size_t ExpectParseableFlight(const std::string& want_reason) const {
    const std::string contents = ReadFlight();
    EXPECT_EQ(contents.find("{\"reason\":\"" + want_reason + "\""), 0u)
        << contents.substr(0, 200);
    size_t events = 0;
    std::istringstream lines(contents);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] != '{' ||
          line.find("\"seq\"") == std::string::npos) {
        continue;
      }
      if (line.back() == ',') line.pop_back();
      std::map<std::string, std::string> fields;
      EXPECT_TRUE(json::ParseFlatObject(line, &fields).ok()) << line;
      EXPECT_EQ(fields.count("trace_id"), 1u);
      EXPECT_EQ(fields.count("kind"), 1u);
      EXPECT_EQ(fields.count("t_ns"), 1u);
      ++events;
    }
    return events;
  }

  std::string dir_;
};

TEST_F(FlightRecorderTest, InjectedCrashFaultDumpsFlightJson) {
  HelperResult result = RunFlightHelper(
      dir_, "fault",
      "TM_FAULT_POINT='flight.test' TM_FAULT_MODE='crash'");
  ASSERT_TRUE(result.exited);
  // The crash hook must not change how the process dies.
  ASSERT_EQ(result.exit_code, fault::kCrashExitCode);
  ASSERT_TRUE(std::filesystem::exists(FlightPath()));
  // The dump names the fault point that killed the process and carries the
  // helper's recorded events.
  EXPECT_GE(ExpectParseableFlight("flight.test"), 32u);
}

TEST_F(FlightRecorderTest, FatalSignalDumpsFlightJsonAndStillDies) {
  HelperResult result = RunFlightHelper(dir_, "segv");
  // The handler re-raises after dumping: the helper must not survive —
  // either the default disposition kills it or a sanitizer's chained
  // handler exits non-zero.
  EXPECT_TRUE(result.signaled || (result.exited && result.exit_code != 0))
      << "exited=" << result.exited << " code=" << result.exit_code;
  ASSERT_TRUE(std::filesystem::exists(FlightPath()));
  EXPECT_GE(ExpectParseableFlight("SIGSEGV"), 32u);
}

TEST_F(FlightRecorderTest, ManualDumpWritesWithoutDying) {
  HelperResult result = RunFlightHelper(dir_, "manual");
  ASSERT_TRUE(result.exited);
  ASSERT_EQ(result.exit_code, kHelperOk);
  EXPECT_GE(ExpectParseableFlight("manual_test"), 32u);
}

TEST_F(FlightRecorderTest, ConfigureFromEnvPicksUpFlightDir) {
  HelperResult result =
      RunFlightHelper("ENV", "manual", "TM_FLIGHT_DIR='" + dir_ + "'");
  ASSERT_TRUE(result.exited);
  ASSERT_EQ(result.exit_code, kHelperOk);
  EXPECT_GE(ExpectParseableFlight("manual_test"), 32u);
}

TEST_F(FlightRecorderTest, UnarmedFaultPointLeavesHelperAlive) {
  // Same code path as the crash scenario but with no fault armed: the
  // helper runs to completion and the only dump is its manual one.
  HelperResult result = RunFlightHelper(dir_, "fault");
  ASSERT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, kHelperOk);
}

}  // namespace

// `--helper-flight <dir> <death>`: configure the recorder at <dir> (or from
// TM_FLIGHT_DIR when <dir> is the literal "ENV"), record a burst of events,
// then die as directed.
int RunHelperFlight(const std::string& dir, const std::string& death) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  if (dir == "ENV") {
    obs::flight::ConfigureFromEnv();
  } else {
    obs::flight::Configure(dir);
  }
  if (!obs::flight::Configured()) return kHelperConfigureFailed;

  for (uint64_t i = 0; i < 32; ++i) {
    recorder.Record(kHelperTraceId, obs::TraceEventKind::kMark, /*arg=*/i);
  }

  if (death == "fault") {
    // With TM_FAULT_POINT=flight.test TM_FAULT_MODE=crash armed, OnPoint
    // runs the crash hook (the flight dump) and _Exit(86)s; unarmed it is a
    // no-op and the helper finishes cleanly.
    Status status = fault::FaultInjector::Global().OnPoint("flight.test");
    if (!status.ok()) return kHelperSurvivedCrash;
    return kHelperOk;
  }
  if (death == "segv") {
    ::raise(SIGSEGV);
    return kHelperSurvivedCrash;  // unreachable unless the handler misfired
  }
  if (death == "manual") {
    return obs::flight::DumpNow("manual_test") ? kHelperOk
                                               : kHelperConfigureFailed;
  }
  std::fprintf(stderr, "unknown death mode: %s\n", death.c_str());
  return kHelperConfigureFailed;
}

}  // namespace tailormatch

int main(int argc, char** argv) {
  if (argc == 4 && std::string(argv[1]) == "--helper-flight") {
    return tailormatch::RunHelperFlight(argv[2], argv[3]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
