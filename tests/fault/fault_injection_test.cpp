#include "util/fault.h"

#include <cmath>
#include <cstdlib>
#include <filesystem>

#include <gtest/gtest.h>

#include "util/serialize.h"

namespace tailormatch::fault {
namespace {

// Every test leaves the global injector clean; faults are process-wide.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST_F(FaultInjectionTest, ModeNamesRoundTrip) {
  for (FaultMode mode : {FaultMode::kIoError, FaultMode::kShortWrite,
                         FaultMode::kBitFlip, FaultMode::kCrash,
                         FaultMode::kNan}) {
    FaultMode parsed = FaultMode::kNone;
    ASSERT_TRUE(ParseFaultMode(FaultModeName(mode), &parsed))
        << FaultModeName(mode);
    EXPECT_EQ(parsed, mode);
  }
  FaultMode parsed = FaultMode::kNone;
  EXPECT_FALSE(ParseFaultMode("definitely_not_a_mode", &parsed));
}

TEST_F(FaultInjectionTest, UnarmedPointsAreNoOps) {
  EXPECT_FALSE(FaultInjector::Global().AnyArmed());
  EXPECT_TRUE(FaultInjector::Global().OnPoint("nowhere").ok());
  std::string data = "payload";
  EXPECT_TRUE(FaultInjector::Global().OnWrite("nowhere", &data).ok());
  EXPECT_EQ(data, "payload");
  double value = 1.0;
  FaultInjector::Global().OnValue("nowhere", &value);
  EXPECT_DOUBLE_EQ(value, 1.0);
}

TEST_F(FaultInjectionTest, FiresOnceOnNthArrival) {
  FaultSpec spec;
  spec.point = "test.nth";
  spec.mode = FaultMode::kIoError;
  spec.nth = 2;
  ScopedFault fault(spec);
  EXPECT_TRUE(FaultInjector::Global().OnPoint("test.nth").ok());
  Status second = FaultInjector::Global().OnPoint("test.nth");
  EXPECT_EQ(second.code(), StatusCode::kIoError);
  // Fired; later arrivals pass.
  EXPECT_TRUE(FaultInjector::Global().OnPoint("test.nth").ok());
  EXPECT_EQ(FaultInjector::Global().hits("test.nth"), 3);
}

TEST_F(FaultInjectionTest, NthZeroFiresEveryArrival) {
  FaultSpec spec;
  spec.point = "test.every";
  spec.mode = FaultMode::kIoError;
  spec.nth = 0;
  ScopedFault fault(spec);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(FaultInjector::Global().OnPoint("test.every").ok());
  }
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnExit) {
  {
    FaultSpec spec;
    spec.point = "test.scope";
    spec.mode = FaultMode::kIoError;
    ScopedFault fault(spec);
    EXPECT_TRUE(FaultInjector::Global().AnyArmed());
  }
  EXPECT_FALSE(FaultInjector::Global().AnyArmed());
  EXPECT_TRUE(FaultInjector::Global().OnPoint("test.scope").ok());
}

TEST_F(FaultInjectionTest, ShortWriteTruncatesPayload) {
  FaultSpec spec;
  spec.point = "test.write";
  spec.mode = FaultMode::kShortWrite;
  spec.keep_fraction = 0.25;
  ScopedFault fault(spec);
  std::string data(100, 'x');
  EXPECT_TRUE(FaultInjector::Global().OnWrite("test.write", &data).ok());
  EXPECT_EQ(data.size(), 25u);
}

TEST_F(FaultInjectionTest, BitFlipChangesExactlyOneBit) {
  FaultSpec spec;
  spec.point = "test.write";
  spec.mode = FaultMode::kBitFlip;
  spec.seed = 99;
  ScopedFault fault(spec);
  const std::string original(64, '\0');
  std::string data = original;
  EXPECT_TRUE(FaultInjector::Global().OnWrite("test.write", &data).ok());
  ASSERT_EQ(data.size(), original.size());
  int flipped_bits = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(data[i] ^ original[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST_F(FaultInjectionTest, NanPoisonsValue) {
  FaultSpec spec;
  spec.point = "test.value";
  spec.mode = FaultMode::kNan;
  ScopedFault fault(spec);
  double value = 0.125;
  FaultInjector::Global().OnValue("test.value", &value);
  EXPECT_TRUE(std::isnan(value));
}

TEST_F(FaultInjectionTest, ArmFromEnvironment) {
  ::setenv("TM_FAULT_POINT", "test.env", 1);
  ::setenv("TM_FAULT_MODE", "io_error", 1);
  ::setenv("TM_FAULT_NTH", "1", 1);
  FaultInjector::Global().ArmFromEnv();
  ::unsetenv("TM_FAULT_POINT");
  ::unsetenv("TM_FAULT_MODE");
  ::unsetenv("TM_FAULT_NTH");
  EXPECT_EQ(FaultInjector::Global().OnPoint("test.env").code(),
            StatusCode::kIoError);
}

// --- Flush-level behavior: the fault points inside WriteFileAtomic ---

TEST_F(FaultInjectionTest, IoErrorBeforeRenamePreservesOldFile) {
  const std::string path = TempPath("tm_fault_atomic.bin");
  BinaryWriter old_writer;
  old_writer.WriteString("old content");
  ASSERT_TRUE(old_writer.Flush(path).ok());

  for (const char* point :
       {"serialize.flush.open", "serialize.flush.write",
        "serialize.flush.mid_write", "serialize.flush.fsync",
        "serialize.flush.rename"}) {
    FaultSpec spec;
    spec.point = point;
    spec.mode = FaultMode::kIoError;
    ScopedFault fault(spec);
    BinaryWriter new_writer;
    new_writer.WriteString("new content");
    Status status = new_writer.Flush(path);
    EXPECT_EQ(status.code(), StatusCode::kIoError) << point;
    // The failed write never touches the committed file and leaves no temp
    // file behind.
    Result<BinaryReader> reader = BinaryReader::FromFile(path);
    ASSERT_TRUE(reader.ok()) << point;
    std::string value;
    ASSERT_TRUE(reader.value().ReadString(&value).ok()) << point;
    EXPECT_EQ(value, "old content") << point;
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp")) << point;
  }
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, ShortWriteCommitsTornFrameThatFailsToLoad) {
  const std::string path = TempPath("tm_fault_torn.bin");
  FaultSpec spec;
  spec.point = "serialize.flush.write";
  spec.mode = FaultMode::kShortWrite;
  spec.keep_fraction = 0.5;
  ScopedFault fault(spec);
  BinaryWriter writer;
  writer.WriteString("payload that will be torn in half");
  // The damaged write itself succeeds (the fault models silent data loss)...
  ASSERT_TRUE(writer.FlushFramed(path).ok());
  // ...and the frame check is what refuses the torn file.
  Result<BinaryReader> reader = BinaryReader::FromFramedFile(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, BitFlipCommitsFrameThatFailsCrc) {
  const std::string path = TempPath("tm_fault_flip.bin");
  // Flip within the payload region (header is 16 bytes; write enough data
  // that most seeds land in the payload). Whatever field is hit, the load
  // must fail — try a few seeds to cover header and payload flips.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    FaultSpec spec;
    spec.point = "serialize.flush.write";
    spec.mode = FaultMode::kBitFlip;
    spec.seed = seed;
    ScopedFault fault(spec);
    BinaryWriter writer;
    for (int i = 0; i < 64; ++i) writer.WriteU32(static_cast<uint32_t>(i));
    ASSERT_TRUE(writer.FlushFramed(path).ok());
    EXPECT_FALSE(BinaryReader::FromFramedFile(path).ok()) << "seed " << seed;
  }
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, FramedRoundTripSurvivesWithoutFaults) {
  const std::string path = TempPath("tm_fault_clean.bin");
  BinaryWriter writer;
  writer.WriteString("clean");
  writer.WriteFloatVector({1.0f, 2.0f});
  ASSERT_TRUE(writer.FlushFramed(path).ok());
  Result<BinaryReader> reader = BinaryReader::FromFramedFile(path);
  ASSERT_TRUE(reader.ok());
  std::string value;
  std::vector<float> values;
  ASSERT_TRUE(reader.value().ReadString(&value).ok());
  ASSERT_TRUE(reader.value().ReadFloatVector(&values).ok());
  EXPECT_EQ(value, "clean");
  EXPECT_EQ(values, (std::vector<float>{1.0f, 2.0f}));
  EXPECT_TRUE(reader.value().AtEnd());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tailormatch::fault
