// Subprocess crash-recovery harness: re-executes this binary as a helper
// that writes a checkpoint while a TM_FAULT_* environment fault is armed,
// killing or corrupting the write at a precise phase. After every scenario
// the committed path must either load cleanly or be rejected with a typed
// Status — a crash at any instant never yields a torn-but-accepted file, and
// never destroys a previously committed checkpoint.
//
// The helper is a fresh exec (not a fork of the test): by the time tests
// run, the process may own threads and sanitizer state that make
// fork-without-exec hazardous.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "llm/sim_llm.h"
#include "tiny_model.h"
#include "util/fault.h"

namespace tailormatch {
namespace {

// Helper exit codes (distinct from fault::kCrashExitCode = 86).
constexpr int kHelperOk = 0;
constexpr int kHelperSaveFailed = 7;

std::string SelfExe() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return "";
  buffer[n] = '\0';
  return buffer;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

struct HelperResult {
  bool exited = false;
  int exit_code = -1;
};

// Runs `<self> --helper-save <path>` with the given fault armed via the
// environment. nth=1 and the helper performs exactly one Flush, so the
// fault hits the checkpoint write.
HelperResult RunSaveHelper(const std::string& path, const std::string& point,
                           const std::string& mode,
                           const std::string& extra_env = "") {
  const std::string command = "TM_FAULT_POINT='" + point + "' TM_FAULT_MODE='" +
                              mode + "' " + extra_env + " '" + SelfExe() +
                              "' --helper-save '" + path + "'";
  const int status = std::system(command.c_str());
  HelperResult result;
  result.exited = WIFEXITED(status);
  if (result.exited) result.exit_code = WEXITSTATUS(status);
  return result;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(SelfExe().empty());
    dir_ = (std::filesystem::temp_directory_path() / "tm_crash_recovery")
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/model.ckpt";
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
  std::string path_;
};

TEST_F(CrashRecoveryTest, HelperWritesLoadableCheckpointWithoutFaults) {
  HelperResult result = RunSaveHelper(path_, "", "");
  ASSERT_TRUE(result.exited);
  ASSERT_EQ(result.exit_code, kHelperOk);
  EXPECT_TRUE(llm::SimLlm::LoadCheckpoint(path_).ok());
}

TEST_F(CrashRecoveryTest, CrashAtEveryPhaseNeverLeavesTornCommittedFile) {
  for (const char* point :
       {"serialize.flush.open", "serialize.flush.write",
        "serialize.flush.mid_write", "serialize.flush.fsync",
        "serialize.flush.rename", "serialize.flush.committed"}) {
    std::filesystem::remove(path_);
    HelperResult result = RunSaveHelper(path_, point, "crash");
    ASSERT_TRUE(result.exited) << point;
    ASSERT_EQ(result.exit_code, fault::kCrashExitCode) << point;
    if (std::string(point) == "serialize.flush.committed") {
      // The rename happened before the crash: the checkpoint is complete.
      EXPECT_TRUE(llm::SimLlm::LoadCheckpoint(path_).ok()) << point;
    } else {
      // The crash predates the atomic rename: the committed path was never
      // created — load-or-reject, never a torn file.
      EXPECT_FALSE(std::filesystem::exists(path_)) << point;
      EXPECT_FALSE(llm::SimLlm::LoadCheckpoint(path_).ok()) << point;
    }
  }
}

TEST_F(CrashRecoveryTest, CrashDuringOverwritePreservesOldCheckpoint) {
  ASSERT_EQ(RunSaveHelper(path_, "", "").exit_code, kHelperOk);
  const std::string before = ReadFileBytes(path_);
  ASSERT_FALSE(before.empty());
  for (const char* point :
       {"serialize.flush.open", "serialize.flush.write",
        "serialize.flush.mid_write", "serialize.flush.fsync",
        "serialize.flush.rename"}) {
    HelperResult result = RunSaveHelper(path_, point, "crash");
    ASSERT_TRUE(result.exited) << point;
    ASSERT_EQ(result.exit_code, fault::kCrashExitCode) << point;
    // Old checkpoint bytes are untouched and still load.
    EXPECT_EQ(ReadFileBytes(path_), before) << point;
    EXPECT_TRUE(llm::SimLlm::LoadCheckpoint(path_).ok()) << point;
  }
}

TEST_F(CrashRecoveryTest, SilentCorruptionIsCommittedButRejectedOnLoad) {
  // short_write / bit_flip model damage *below* the atomic-rename layer
  // (bad disk, bad RAM): the write succeeds, the frame check must refuse
  // the file on load.
  for (const char* mode : {"short_write", "bit_flip"}) {
    std::filesystem::remove(path_);
    HelperResult result =
        RunSaveHelper(path_, "serialize.flush.write", mode,
                      "TM_FAULT_KEEP=0.5 TM_FAULT_SEED=12345");
    ASSERT_TRUE(result.exited) << mode;
    ASSERT_EQ(result.exit_code, kHelperOk) << mode;  // damage was silent
    ASSERT_TRUE(std::filesystem::exists(path_)) << mode;
    EXPECT_FALSE(llm::SimLlm::LoadCheckpoint(path_).ok()) << mode;
  }
}

TEST_F(CrashRecoveryTest, IoErrorSurfacesInHelperAndPreservesOldFile) {
  ASSERT_EQ(RunSaveHelper(path_, "", "").exit_code, kHelperOk);
  const std::string before = ReadFileBytes(path_);
  HelperResult result =
      RunSaveHelper(path_, "serialize.flush.rename", "io_error");
  ASSERT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, kHelperSaveFailed);
  EXPECT_EQ(ReadFileBytes(path_), before);
  EXPECT_TRUE(llm::SimLlm::LoadCheckpoint(path_).ok());
}

TEST_F(CrashRecoveryTest, RecoveryAfterCrashCommitsCleanCheckpoint) {
  // The full story: a run crashes mid-checkpoint, the retry then succeeds
  // and the result is loadable.
  HelperResult crashed =
      RunSaveHelper(path_, "serialize.flush.mid_write", "crash");
  ASSERT_EQ(crashed.exit_code, fault::kCrashExitCode);
  EXPECT_FALSE(std::filesystem::exists(path_));
  HelperResult retried = RunSaveHelper(path_, "", "");
  ASSERT_EQ(retried.exit_code, kHelperOk);
  EXPECT_TRUE(llm::SimLlm::LoadCheckpoint(path_).ok());
}

}  // namespace

// Exit status of the save helper (see RunSaveHelper).
int RunHelperSave(const std::string& path) {
  llm::SimLlm model = fault_test::MakeTinyModel();
  Status status = model.SaveCheckpoint(path);
  if (!status.ok()) {
    std::fprintf(stderr, "helper save failed: %s\n",
                 status.ToString().c_str());
    return kHelperSaveFailed;
  }
  return kHelperOk;
}

}  // namespace tailormatch

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--helper-save") {
    return tailormatch::RunHelperSave(argv[2]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
