// Subprocess crash-recovery harness: re-executes this binary as a helper
// that writes a checkpoint while a TM_FAULT_* environment fault is armed,
// killing or corrupting the write at a precise phase. After every scenario
// the committed path must either load cleanly or be rejected with a typed
// Status — a crash at any instant never yields a torn-but-accepted file, and
// never destroys a previously committed checkpoint.
//
// The helper is a fresh exec (not a fork of the test): by the time tests
// run, the process may own threads and sanitizer state that make
// fork-without-exec hazardous.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "llm/sim_llm.h"
#include "serve/model_registry.h"
#include "tiny_model.h"
#include "util/fault.h"

namespace tailormatch {
namespace {

// Helper exit codes (distinct from fault::kCrashExitCode = 86).
constexpr int kHelperOk = 0;
constexpr int kHelperSaveFailed = 7;
constexpr int kHelperReloadFailed = 8;

std::string SelfExe() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return "";
  buffer[n] = '\0';
  return buffer;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

struct HelperResult {
  bool exited = false;
  int exit_code = -1;
};

// Runs `<self> --helper-save <path>` with the given fault armed via the
// environment. nth=1 and the helper performs exactly one Flush, so the
// fault hits the checkpoint write.
HelperResult RunSaveHelper(const std::string& path, const std::string& point,
                           const std::string& mode,
                           const std::string& extra_env = "") {
  const std::string command = "TM_FAULT_POINT='" + point + "' TM_FAULT_MODE='" +
                              mode + "' " + extra_env + " '" + SelfExe() +
                              "' --helper-save '" + path + "'";
  const int status = std::system(command.c_str());
  HelperResult result;
  result.exited = WIFEXITED(status);
  if (result.exited) result.exit_code = WEXITSTATUS(status);
  return result;
}

// Runs `<self> --helper-reload <from> <to>`: register a model from `from`,
// then hot-swap it to `to` with the given fault armed at "serve.reload" —
// the instant between checkpoint validation and publication.
HelperResult RunReloadHelper(const std::string& from, const std::string& to,
                             const std::string& point,
                             const std::string& mode) {
  const std::string command = "TM_FAULT_POINT='" + point + "' TM_FAULT_MODE='" +
                              mode + "' '" + SelfExe() + "' --helper-reload '" +
                              from + "' '" + to + "'";
  const int status = std::system(command.c_str());
  HelperResult result;
  result.exited = WIFEXITED(status);
  if (result.exited) result.exit_code = WEXITSTATUS(status);
  return result;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(SelfExe().empty());
    // Unique per test AND per process: ctest -j runs sibling tests of this
    // fixture concurrently, so a shared directory would collide.
    dir_ = (std::filesystem::temp_directory_path() /
            ("tm_crash_recovery_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()) +
             "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/model.ckpt";
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
  std::string path_;
};

TEST_F(CrashRecoveryTest, HelperWritesLoadableCheckpointWithoutFaults) {
  HelperResult result = RunSaveHelper(path_, "", "");
  ASSERT_TRUE(result.exited);
  ASSERT_EQ(result.exit_code, kHelperOk);
  EXPECT_TRUE(llm::SimLlm::LoadCheckpoint(path_).ok());
}

TEST_F(CrashRecoveryTest, CrashAtEveryPhaseNeverLeavesTornCommittedFile) {
  for (const char* point :
       {"serialize.flush.open", "serialize.flush.write",
        "serialize.flush.mid_write", "serialize.flush.fsync",
        "serialize.flush.rename", "serialize.flush.committed"}) {
    std::filesystem::remove(path_);
    HelperResult result = RunSaveHelper(path_, point, "crash");
    ASSERT_TRUE(result.exited) << point;
    ASSERT_EQ(result.exit_code, fault::kCrashExitCode) << point;
    if (std::string(point) == "serialize.flush.committed") {
      // The rename happened before the crash: the checkpoint is complete.
      EXPECT_TRUE(llm::SimLlm::LoadCheckpoint(path_).ok()) << point;
    } else {
      // The crash predates the atomic rename: the committed path was never
      // created — load-or-reject, never a torn file.
      EXPECT_FALSE(std::filesystem::exists(path_)) << point;
      EXPECT_FALSE(llm::SimLlm::LoadCheckpoint(path_).ok()) << point;
    }
  }
}

TEST_F(CrashRecoveryTest, CrashDuringOverwritePreservesOldCheckpoint) {
  ASSERT_EQ(RunSaveHelper(path_, "", "").exit_code, kHelperOk);
  const std::string before = ReadFileBytes(path_);
  ASSERT_FALSE(before.empty());
  for (const char* point :
       {"serialize.flush.open", "serialize.flush.write",
        "serialize.flush.mid_write", "serialize.flush.fsync",
        "serialize.flush.rename"}) {
    HelperResult result = RunSaveHelper(path_, point, "crash");
    ASSERT_TRUE(result.exited) << point;
    ASSERT_EQ(result.exit_code, fault::kCrashExitCode) << point;
    // Old checkpoint bytes are untouched and still load.
    EXPECT_EQ(ReadFileBytes(path_), before) << point;
    EXPECT_TRUE(llm::SimLlm::LoadCheckpoint(path_).ok()) << point;
  }
}

TEST_F(CrashRecoveryTest, SilentCorruptionIsCommittedButRejectedOnLoad) {
  // short_write / bit_flip model damage *below* the atomic-rename layer
  // (bad disk, bad RAM): the write succeeds, the frame check must refuse
  // the file on load.
  for (const char* mode : {"short_write", "bit_flip"}) {
    std::filesystem::remove(path_);
    HelperResult result =
        RunSaveHelper(path_, "serialize.flush.write", mode,
                      "TM_FAULT_KEEP=0.5 TM_FAULT_SEED=12345");
    ASSERT_TRUE(result.exited) << mode;
    ASSERT_EQ(result.exit_code, kHelperOk) << mode;  // damage was silent
    ASSERT_TRUE(std::filesystem::exists(path_)) << mode;
    EXPECT_FALSE(llm::SimLlm::LoadCheckpoint(path_).ok()) << mode;
  }
}

TEST_F(CrashRecoveryTest, IoErrorSurfacesInHelperAndPreservesOldFile) {
  ASSERT_EQ(RunSaveHelper(path_, "", "").exit_code, kHelperOk);
  const std::string before = ReadFileBytes(path_);
  HelperResult result =
      RunSaveHelper(path_, "serialize.flush.rename", "io_error");
  ASSERT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, kHelperSaveFailed);
  EXPECT_EQ(ReadFileBytes(path_), before);
  EXPECT_TRUE(llm::SimLlm::LoadCheckpoint(path_).ok());
}

TEST_F(CrashRecoveryTest, RecoveryAfterCrashCommitsCleanCheckpoint) {
  // The full story: a run crashes mid-checkpoint, the retry then succeeds
  // and the result is loadable.
  HelperResult crashed =
      RunSaveHelper(path_, "serialize.flush.mid_write", "crash");
  ASSERT_EQ(crashed.exit_code, fault::kCrashExitCode);
  EXPECT_FALSE(std::filesystem::exists(path_));
  HelperResult retried = RunSaveHelper(path_, "", "");
  ASSERT_EQ(retried.exit_code, kHelperOk);
  EXPECT_TRUE(llm::SimLlm::LoadCheckpoint(path_).ok());
}

TEST_F(CrashRecoveryTest, CrashMidReloadLeavesNoTornServingState) {
  const std::string from = dir_ + "/serving.ckpt";
  const std::string to = dir_ + "/candidate.ckpt";
  ASSERT_EQ(RunSaveHelper(from, "", "").exit_code, kHelperOk);
  ASSERT_EQ(RunSaveHelper(to, "", "").exit_code, kHelperOk);
  const std::string from_bytes = ReadFileBytes(from);
  const std::string to_bytes = ReadFileBytes(to);

  // Crash exactly between checkpoint validation and publication.
  HelperResult crashed = RunReloadHelper(from, to, "serve.reload", "crash");
  ASSERT_TRUE(crashed.exited);
  ASSERT_EQ(crashed.exit_code, fault::kCrashExitCode);

  // Neither checkpoint file was damaged by the half-done swap...
  EXPECT_EQ(ReadFileBytes(from), from_bytes);
  EXPECT_EQ(ReadFileBytes(to), to_bytes);
  EXPECT_TRUE(llm::SimLlm::LoadCheckpoint(from).ok());
  EXPECT_TRUE(llm::SimLlm::LoadCheckpoint(to).ok());

  // ...and a fresh process can bring serving back up from the old version,
  // then complete the interrupted swap.
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", from).ok());
  EXPECT_EQ(registry.Get("m")->version, 1u);
  ASSERT_TRUE(registry.Reload("m", to).ok());
  EXPECT_EQ(registry.Get("m")->version, 2u);
}

TEST_F(CrashRecoveryTest, FaultedReloadHelperKeepsOldVersionServing) {
  const std::string from = dir_ + "/serving.ckpt";
  const std::string to = dir_ + "/candidate.ckpt";
  ASSERT_EQ(RunSaveHelper(from, "", "").exit_code, kHelperOk);
  ASSERT_EQ(RunSaveHelper(to, "", "").exit_code, kHelperOk);
  HelperResult result = RunReloadHelper(from, to, "serve.reload", "io_error");
  ASSERT_TRUE(result.exited);
  // The helper verifies in-process that the failed swap left version 1
  // serving; kHelperReloadFailed would mean that invariant broke.
  EXPECT_EQ(result.exit_code, kHelperOk);
}

}  // namespace

// Exit status of the save helper (see RunSaveHelper).
int RunHelperSave(const std::string& path) {
  llm::SimLlm model = fault_test::MakeTinyModel();
  Status status = model.SaveCheckpoint(path);
  if (!status.ok()) {
    std::fprintf(stderr, "helper save failed: %s\n",
                 status.ToString().c_str());
    return kHelperSaveFailed;
  }
  return kHelperOk;
}

// Exit status of the reload helper (see RunReloadHelper): registers `from`,
// attempts the hot-swap to `to` (crashing here if a crash fault is armed at
// "serve.reload"), then verifies in-process that serving is consistent —
// version 2 after a clean swap, version 1 still live after a failed one.
int RunHelperReload(const std::string& from, const std::string& to) {
  serve::ModelRegistry registry;
  if (!registry.Register("m", from).ok()) return kHelperReloadFailed;
  const Status reload = registry.Reload("m", to);
  std::shared_ptr<const serve::ServedModel> served = registry.Get("m");
  if (served == nullptr || served->model == nullptr) {
    return kHelperReloadFailed;
  }
  if (served->version != (reload.ok() ? 2u : 1u)) return kHelperReloadFailed;
  const double probability =
      served->model->PredictMatchProbability("entity 1: a entity 2: b");
  if (!(probability >= 0.0 && probability <= 1.0)) return kHelperReloadFailed;
  return kHelperOk;
}

}  // namespace tailormatch

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--helper-save") {
    return tailormatch::RunHelperSave(argv[2]);
  }
  if (argc == 4 && std::string(argv[1]) == "--helper-reload") {
    return tailormatch::RunHelperReload(argv[2], argv[3]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
