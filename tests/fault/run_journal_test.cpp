#include "core/run_journal.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "util/fault.h"

namespace tailormatch::core {
namespace {

class RunJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test and per process: gtest_discover_tests runs each TEST
    // as its own ctest entry, so a shared directory would be created and
    // remove_all'd concurrently under `ctest -j`.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("tm_journal_test_") + std::to_string(getpid()) +
             "_" + info->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    fault::FaultInjector::Global().DisarmAll();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
};

TEST_F(RunJournalTest, DisabledJournalIsInert) {
  RunJournal journal;
  EXPECT_FALSE(journal.enabled());
  EXPECT_FALSE(journal.Has("anything"));
  EXPECT_TRUE(journal.Record("stage", "payload").ok());
  EXPECT_FALSE(journal.Has("stage"));
}

TEST_F(RunJournalTest, RecordsSurviveReload) {
  {
    RunJournal journal(dir_, "run-a");
    ASSERT_TRUE(journal.enabled());
    ASSERT_TRUE(journal.Record("zero_shot_eval", "61.25").ok());
    ASSERT_TRUE(journal.RecordDouble("final_eval", 82.5).ok());
    EXPECT_TRUE(journal.Has("zero_shot_eval"));
  }
  RunJournal reloaded(dir_, "run-a");
  EXPECT_TRUE(reloaded.Has("zero_shot_eval"));
  EXPECT_EQ(reloaded.Payload("zero_shot_eval"), "61.25");
  double value = 0.0;
  ASSERT_TRUE(reloaded.PayloadDouble("final_eval", &value));
  EXPECT_DOUBLE_EQ(value, 82.5);
  EXPECT_EQ(reloaded.corrupt_lines(), 0);
  EXPECT_FALSE(reloaded.Has("fine_tune"));
}

TEST_F(RunJournalTest, SeparateKeysSeparateJournals) {
  RunJournal a(dir_, "run-a");
  RunJournal b(dir_, "run-b");
  ASSERT_TRUE(a.Record("stage", "1").ok());
  EXPECT_NE(a.path(), b.path());
  EXPECT_FALSE(RunJournal(dir_, "run-b").Has("stage"));
}

TEST_F(RunJournalTest, RunKeySanitizedIntoSingleFile) {
  RunJournal journal(dir_, "llama8b/wdc small");
  ASSERT_TRUE(journal.Record("stage", "1").ok());
  // The separator and space cannot leak into the path.
  EXPECT_NE(journal.path().find("llama8b_wdc_small.journal"),
            std::string::npos)
      << journal.path();
  EXPECT_TRUE(std::filesystem::exists(journal.path()));
}

TEST_F(RunJournalTest, TornTailDroppedOnReload) {
  {
    RunJournal journal(dir_, "torn");
    ASSERT_TRUE(journal.Record("done", "1").ok());
  }
  // Simulate a crash mid-append: a record whose tail never hit the disk.
  {
    RunJournal journal(dir_, "torn");
    std::ofstream out(journal.path(), std::ios::app | std::ios::binary);
    out << "deadbeef\tpartial_sta";  // no payload, no newline
  }
  RunJournal reloaded(dir_, "torn");
  EXPECT_TRUE(reloaded.Has("done"));
  EXPECT_FALSE(reloaded.Has("partial_sta"));
  EXPECT_EQ(reloaded.corrupt_lines(), 1);
}

TEST_F(RunJournalTest, BadChecksumLineDropped) {
  {
    RunJournal journal(dir_, "crc");
    ASSERT_TRUE(journal.Record("good", "1").ok());
    std::ofstream out(journal.path(), std::ios::app | std::ios::binary);
    out << "00000000\tforged\t1\n";  // wrong CRC for this stage/payload
  }
  RunJournal reloaded(dir_, "crc");
  EXPECT_TRUE(reloaded.Has("good"));
  EXPECT_FALSE(reloaded.Has("forged"));
  EXPECT_EQ(reloaded.corrupt_lines(), 1);
}

TEST_F(RunJournalTest, ShortWriteFaultTearsOnlyTheLastRecord) {
  {
    RunJournal journal(dir_, "fault");
    ASSERT_TRUE(journal.Record("first", "1").ok());
    fault::FaultSpec spec;
    spec.point = "journal.append";
    spec.mode = fault::FaultMode::kShortWrite;
    spec.keep_fraction = 0.5;
    fault::ScopedFault fault(spec);
    // The damaged append itself reports success (silent data loss)...
    ASSERT_TRUE(journal.Record("second", "2").ok());
  }
  // ...and the reload drops exactly the torn record.
  RunJournal reloaded(dir_, "fault");
  EXPECT_TRUE(reloaded.Has("first"));
  EXPECT_FALSE(reloaded.Has("second"));
  EXPECT_EQ(reloaded.corrupt_lines(), 1);
}

TEST_F(RunJournalTest, IoErrorFaultSurfacesAsStatus) {
  RunJournal journal(dir_, "io");
  fault::FaultSpec spec;
  spec.point = "journal.append";
  spec.mode = fault::FaultMode::kIoError;
  fault::ScopedFault fault(spec);
  Status status = journal.Record("stage", "1");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(RunJournal(dir_, "io").Has("stage"));
}

TEST(RunJournalDeathTest, TabsInRecordsRejected) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tm_journal_death").string();
  std::filesystem::create_directories(dir);
  RunJournal journal(dir, "death");
  EXPECT_DEATH(journal.Record("bad\tstage", "1"), "tabs or newlines");
}

}  // namespace
}  // namespace tailormatch::core
