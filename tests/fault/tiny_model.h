#ifndef TAILORMATCH_TESTS_FAULT_TINY_MODEL_H_
#define TAILORMATCH_TESTS_FAULT_TINY_MODEL_H_

// Shared fixture for the fault suites: the trivially learnable keyword task
// from tests/llm/trainer_test.cpp (label = whether "same" appears) and a
// tiny SimLlm that trains on it in milliseconds.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "llm/sim_llm.h"

namespace tailormatch::fault_test {

inline std::vector<std::pair<std::string, bool>> KeywordTask() {
  std::vector<std::pair<std::string, bool>> data;
  const char* positives[] = {
      "entity 1: alpha same entity 2: beta", "same entity 1: x entity 2: y",
      "entity 1: gamma entity 2: same delta"};
  const char* negatives[] = {
      "entity 1: alpha entity 2: beta", "entity 1: x entity 2: y other",
      "entity 1: gamma entity 2: delta"};
  for (int repeat = 0; repeat < 10; ++repeat) {
    for (const char* text : positives) data.emplace_back(text, true);
    for (const char* text : negatives) data.emplace_back(text, false);
  }
  return data;
}

inline llm::SimLlm MakeTinyModel() {
  std::vector<std::string> corpus;
  for (auto& [text, label] : KeywordTask()) corpus.push_back(text);
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1200, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.max_seq = 24;
  config.init_seed = 11;
  return llm::SimLlm(config, std::move(tokenizer));
}

// Heap-allocated variant for callers that need shared ownership (SimLlm is
// neither copyable nor movable).
inline std::shared_ptr<llm::SimLlm> MakeTinyModelPtr() {
  std::vector<std::string> corpus;
  for (auto& [text, label] : KeywordTask()) corpus.push_back(text);
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1200, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.max_seq = 24;
  config.init_seed = 11;
  return std::make_shared<llm::SimLlm>(config, std::move(tokenizer));
}

inline std::vector<llm::TrainExample> KeywordExamples(const llm::SimLlm& model) {
  std::vector<llm::TrainExample> examples;
  for (auto& [text, label] : KeywordTask()) {
    examples.push_back(model.EncodeExample(text, label));
  }
  return examples;
}

// Fraction of the keyword task the model labels correctly.
inline double KeywordAccuracy(const llm::SimLlm& model) {
  int correct = 0;
  const auto task = KeywordTask();
  for (auto& [text, label] : task) {
    const bool predicted = model.PredictMatchProbability(text) > 0.5;
    correct += predicted == label ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(task.size());
}

}  // namespace tailormatch::fault_test

#endif  // TAILORMATCH_TESTS_FAULT_TINY_MODEL_H_
