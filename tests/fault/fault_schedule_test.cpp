// FaultSchedule: the chaos drill timeline must be deterministic per seed,
// in-bounds, and correctly shaped for both the periodic (zero-loss headline)
// and poisson (overlapping-failure) modes — the CLI drill, the chaos bench,
// and check_chaos.sh all depend on replaying the identical event list.

#include <map>

#include <gtest/gtest.h>

#include "util/fault.h"

namespace tailormatch::fault {
namespace {

TEST(FaultScheduleTest, SameSeedSameSchedule) {
  ChaosScheduleConfig config;
  config.poisson = true;
  config.pauses = 2;
  const FaultSchedule a = FaultSchedule::Build(config);
  const FaultSchedule b = FaultSchedule::Build(config);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at_s, b.events()[i].at_s);
    EXPECT_EQ(a.events()[i].action, b.events()[i].action);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);
  }
  EXPECT_EQ(a.ToJson(), b.ToJson());

  config.seed = 7;
  const FaultSchedule c = FaultSchedule::Build(config);
  EXPECT_NE(a.ToJson(), c.ToJson()) << "a new seed must reshape the drill";
}

TEST(FaultScheduleTest, PeriodicKillsAreEvenlySpacedRoundRobin) {
  ChaosScheduleConfig config;
  config.duration_s = 5.0;
  config.start_s = 0.5;
  config.kills = 5;
  config.targets = 3;
  config.poisson = false;
  const FaultSchedule schedule = FaultSchedule::Build(config);
  ASSERT_EQ(schedule.events().size(), 5u);
  EXPECT_EQ(schedule.kill_count(), 5);
  const double gap = (5.0 - 0.5) / 5.0;
  for (int i = 0; i < 5; ++i) {
    const ChaosEvent& event = schedule.events()[static_cast<size_t>(i)];
    EXPECT_EQ(event.action, ChaosAction::kKill);
    EXPECT_NEAR(event.at_s, 0.5 + gap * i, 1e-9);
    EXPECT_EQ(event.target, i % 3) << "targets must rotate round-robin";
  }
}

TEST(FaultScheduleTest, PoissonKillsStayInBoundsWithValidTargets) {
  ChaosScheduleConfig config;
  config.poisson = true;
  config.kills = 20;
  config.duration_s = 10.0;
  config.targets = 3;
  const FaultSchedule schedule = FaultSchedule::Build(config);
  EXPECT_GT(schedule.kill_count(), 0);
  EXPECT_LE(schedule.kill_count(), 20);
  double prev = 0.0;
  for (const ChaosEvent& event : schedule.events()) {
    EXPECT_GE(event.at_s, config.start_s);
    EXPECT_LT(event.at_s, config.duration_s);
    EXPECT_GE(event.at_s, prev) << "events must be sorted";
    prev = event.at_s;
    EXPECT_GE(event.target, 0);
    EXPECT_LT(event.target, 3);
  }
}

TEST(FaultScheduleTest, EveryPauseIsPairedWithALaterInBoundsResume) {
  ChaosScheduleConfig config;
  config.kills = 3;
  config.pauses = 4;
  config.pause_ms = 150.0;
  config.targets = 3;
  const FaultSchedule schedule = FaultSchedule::Build(config);
  // Track outstanding pauses per target; a resume must always follow its
  // pause, and nothing may still be paused when the drill ends.
  std::map<int, int> outstanding;
  double last_resume = 0.0;
  for (const ChaosEvent& event : schedule.events()) {
    if (event.action == ChaosAction::kPause) {
      ++outstanding[event.target];
    } else if (event.action == ChaosAction::kResume) {
      ASSERT_GT(outstanding[event.target], 0)
          << "resume for slot " << event.target << " with no pause pending";
      --outstanding[event.target];
      last_resume = event.at_s;
    }
  }
  for (const auto& [target, count] : outstanding) {
    EXPECT_EQ(count, 0) << "slot " << target << " left SIGSTOPped";
  }
  EXPECT_LE(last_resume, config.duration_s);
}

TEST(FaultScheduleTest, ToJsonIsWellFormedAndCountsEvents) {
  ChaosScheduleConfig config;
  config.kills = 4;
  config.pauses = 1;
  config.connect_fail_rate = 0.05;
  const FaultSchedule schedule = FaultSchedule::Build(config);
  const std::string json = schedule.ToJson();
  EXPECT_NE(json.find("\"seed\":20260809"), std::string::npos) << json;
  EXPECT_NE(json.find("\"connect_fail_rate\":0.050"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"action\":\"kill\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"action\":\"pause\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"action\":\"resume\""), std::string::npos) << json;
  // Event count in the array == schedule size (count the "at_s" keys).
  size_t count = 0;
  for (size_t pos = json.find("\"at_s\""); pos != std::string::npos;
       pos = json.find("\"at_s\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, schedule.events().size());
}

TEST(FaultScheduleTest, ZeroKillsZeroPausesIsAnEmptyDrill) {
  ChaosScheduleConfig config;
  config.kills = 0;
  config.pauses = 0;
  const FaultSchedule schedule = FaultSchedule::Build(config);
  EXPECT_TRUE(schedule.events().empty());
  EXPECT_EQ(schedule.kill_count(), 0);
  EXPECT_NE(schedule.ToJson().find("\"events\":[]"), std::string::npos);
}

TEST(FaultScheduleTest, ProbabilisticFaultSpecFiresAtTheConfiguredRate) {
  // The schedule's connect/read fail rates ride on FaultSpec.probability;
  // verify the injector honors it statistically and deterministically.
  FaultSpec spec;
  spec.point = "test.prob";
  spec.mode = FaultMode::kIoError;
  spec.probability = 0.2;
  spec.seed = 42;
  ScopedFault fault(spec);
  int fired = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!FaultInjector::Global().OnPoint("test.prob").ok()) ++fired;
  }
  EXPECT_GT(fired, 300) << "0.2 rate fired " << fired << "/2000";
  EXPECT_LT(fired, 500) << "0.2 rate fired " << fired << "/2000";
}

}  // namespace
}  // namespace tailormatch::fault
