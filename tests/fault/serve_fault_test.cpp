// Fault-injection coverage for the online serving path: armed faults at the
// serve.* points must surface as typed per-request outcomes (never hangs,
// never torn registry state), and serving must heal as soon as the fault
// clears.

#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "serve/micro_batcher.h"
#include "serve/model_registry.h"
#include "tiny_model.h"
#include "util/fault.h"

namespace tailormatch::serve {
namespace {

class ServeFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }

  static std::shared_ptr<const ServedModel> TinyServed() {
    return std::make_shared<const ServedModel>(
        ServedModel{"tiny", 1, "<memory>", fault_test::MakeTinyModelPtr()});
  }

  static data::EntityPair Pair(const std::string& left,
                               const std::string& right) {
    return core::MakeSurfacePair(left, right, data::Domain::kProduct);
  }
};

TEST_F(ServeFaultTest, EnqueueFaultRejectsOneRequestThenHeals) {
  MicroBatcher batcher(MicroBatcherConfig{});
  std::shared_ptr<const ServedModel> served = TinyServed();

  fault::FaultSpec spec;
  spec.point = "serve.enqueue";
  spec.mode = fault::FaultMode::kIoError;
  spec.nth = 1;
  fault::ScopedFault armed(spec);

  ServeResult faulted = batcher.SubmitAndWait(
      served, prompt::PromptTemplate::kDefault, Pair("a", "b"));
  EXPECT_EQ(faulted.outcome, RequestOutcome::kError);
  EXPECT_FALSE(faulted.error.empty());

  // nth=1: the fault fired once; the very next request serves normally.
  ServeResult healed = batcher.SubmitAndWait(
      served, prompt::PromptTemplate::kDefault, Pair("a", "b"));
  EXPECT_EQ(healed.outcome, RequestOutcome::kOk);
}

TEST_F(ServeFaultTest, ForwardFaultFailsTheBatchWithTypedErrors) {
  MicroBatcherConfig config;
  config.max_batch = 4;
  config.max_wait_us = 50000;
  MicroBatcher batcher(config);
  std::shared_ptr<const ServedModel> served = TinyServed();

  fault::FaultSpec spec;
  spec.point = "serve.forward";
  spec.mode = fault::FaultMode::kIoError;
  spec.nth = 1;
  fault::ScopedFault armed(spec);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(batcher.Submit(served, prompt::PromptTemplate::kDefault,
                                     Pair("p" + std::to_string(i), "q")));
  }
  int errors = 0;
  for (auto& future : futures) {
    ServeResult result = future.get();
    if (result.outcome == RequestOutcome::kError) {
      ++errors;
      EXPECT_NE(result.error.find("injected fault"), std::string::npos)
          << result.error;
    } else {
      // Requests dispatched after the one-shot fault cleared serve fine.
      EXPECT_EQ(result.outcome, RequestOutcome::kOk);
    }
  }
  EXPECT_GE(errors, 1) << "the faulted dispatch must fail its whole batch";

  ServeResult healed = batcher.SubmitAndWait(
      served, prompt::PromptTemplate::kDefault, Pair("x", "y"));
  EXPECT_EQ(healed.outcome, RequestOutcome::kOk);
}

TEST_F(ServeFaultTest, ReloadFaultKeepsPreviousVersionServing) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_serve_fault.ckpt")
          .string();
  llm::SimLlm model = fault_test::MakeTinyModel();
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", path).ok());
  const double before = registry.Get("m")->model->PredictMatchProbability(
      "entity 1: alpha same entity 2: beta");

  fault::FaultSpec spec;
  spec.point = "serve.reload";
  spec.mode = fault::FaultMode::kIoError;
  spec.nth = 1;
  fault::ScopedFault armed(spec);

  // The checkpoint itself is valid; the fault hits between validation and
  // publication. The swap must be rejected as a unit.
  EXPECT_FALSE(registry.Reload("m", path).ok());
  std::shared_ptr<const ServedModel> served = registry.Get("m");
  EXPECT_EQ(served->version, 1u);
  EXPECT_DOUBLE_EQ(served->model->PredictMatchProbability(
                       "entity 1: alpha same entity 2: beta"),
                   before);

  // Fault cleared: the identical swap goes through.
  EXPECT_TRUE(registry.Reload("m", path).ok());
  EXPECT_EQ(registry.Get("m")->version, 2u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tailormatch::serve
