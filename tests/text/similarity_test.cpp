#include "text/similarity.h"

#include <gtest/gtest.h>

namespace tailormatch::text {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
}

TEST(NormalizedLevenshteinTest, Bounds) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", ""), 1.0);
  EXPECT_NEAR(NormalizedLevenshtein("abcd", "wxyz"), 0.0, 1e-9);
  const double partial = NormalizedLevenshtein("jabra", "jbara");
  EXPECT_GT(partial, 0.4);
  EXPECT_LT(partial, 1.0);
}

TEST(JaroWinklerTest, IdenticalAndDisjoint) {
  EXPECT_DOUBLE_EQ(JaroWinkler("martha", "martha"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  // Shared prefix should score higher than the same edits elsewhere.
  EXPECT_GT(JaroWinkler("prefixed", "prefixes"),
            JaroWinkler("xprefied", "sprefixe"));
}

TEST(JaroWinklerTest, TypoStillHigh) {
  EXPECT_GT(JaroWinkler("cassette", "cassete"), 0.9);
  EXPECT_GT(JaroWinkler("velodyne", "veloodyne"), 0.9);
}

TEST(TokenJaccardTest, OverlapFractions) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a b c", "a b c"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "c d"), 0.0);
  EXPECT_NEAR(TokenJaccard("a b c", "b c d"), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(TokenJaccard("", ""), 1.0);
}

TEST(TrigramDiceTest, Basics) {
  EXPECT_DOUBLE_EQ(TrigramDice("", ""), 1.0);
  EXPECT_GT(TrigramDice("stereo", "stereo"), 0.99);
  EXPECT_LT(TrigramDice("stereo", "wireless"), 0.4);
}

TEST(NumericSimilarityTest, Values) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("80", "80"), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("abc", "80"), 0.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("", "80"), 0.0);
  EXPECT_NEAR(NumericSimilarity("100", "90"), 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(NumericSimilarity("0", "0"), 1.0);
}

TEST(HybridSimilarityTest, OrderingSane) {
  const double identical = HybridSimilarity("jabra evolve 80", "jabra evolve 80");
  const double variant =
      HybridSimilarity("jabra evolve 80 ms stereo", "jabra evolve 80 uc");
  const double different =
      HybridSimilarity("jabra evolve 80", "sram pg 730 cassette");
  EXPECT_GT(identical, variant);
  EXPECT_GT(variant, different);
}

TEST(SharedTokensTest, ReturnsIntersectionInOrder) {
  std::vector<std::string> shared =
      SharedTokens("jabra evolve 80 stereo", "evolve 80 jabra uc");
  EXPECT_EQ(shared, (std::vector<std::string>{"jabra", "evolve", "80"}));
}

TEST(SharedTokensTest, NoDuplicates) {
  std::vector<std::string> shared = SharedTokens("a a a b", "a b");
  EXPECT_EQ(shared, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace tailormatch::text
