#include "text/tfidf.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/corpus_stream.h"
#include "text/inverted_index.h"
#include "util/rng.h"

namespace tailormatch::text {
namespace {

std::vector<std::string> Corpus() {
  return {
      "jabra evolve headset stereo",
      "jabra elite earbuds wireless",
      "sram cassette bike part",
      "sram chainring bike part",
      "logitech mouse wireless",
  };
}

TEST(TfidfTest, EmbedIsUnitNorm) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  SparseVector v = embedder.Embed("jabra evolve headset");
  double norm = 0.0;
  for (auto& [term, weight] : v) norm += weight * weight;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(TfidfTest, CosineSelfIsOne) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  SparseVector v = embedder.Embed("sram cassette bike");
  EXPECT_NEAR(TfidfEmbedder::Cosine(v, v), 1.0, 1e-5);
}

TEST(TfidfTest, UnseenTermsIgnored) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  SparseVector v = embedder.Embed("zzz qqq www");
  EXPECT_TRUE(v.empty());
}

TEST(TfidfTest, RareTermsWeighMore) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  // "headset" appears once, "bike" twice; similarity driven by rare terms.
  const double rare = TfidfEmbedder::Cosine(embedder.Embed("headset"),
                                            embedder.Embed("headset bike"));
  const double common = TfidfEmbedder::Cosine(embedder.Embed("bike"),
                                              embedder.Embed("headset bike"));
  EXPECT_GT(rare, common);
}

TEST(NearestNeighborTest, FindsExactMatchFirst) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  NearestNeighborIndex index(&embedder);
  index.AddAll(Corpus());
  std::vector<int> hits = index.Query("jabra evolve headset stereo", 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0], 0);
}

TEST(NearestNeighborTest, ExcludeSkipsIndex) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  NearestNeighborIndex index(&embedder);
  index.AddAll(Corpus());
  std::vector<int> hits = index.Query("jabra evolve headset stereo", 2,
                                      /*exclude=*/0);
  for (int hit : hits) EXPECT_NE(hit, 0);
}

TEST(NearestNeighborTest, KLargerThanIndex) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  NearestNeighborIndex index(&embedder);
  index.Add("jabra evolve");
  std::vector<int> hits = index.Query("jabra", 10);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(NearestNeighborTest, SemanticNeighborsRankAboveUnrelated) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  NearestNeighborIndex index(&embedder);
  index.AddAll(Corpus());
  std::vector<int> hits = index.Query("sram bike cassette", 5);
  ASSERT_GE(hits.size(), 2u);
  // The two sram/bike documents (2, 3) should come first in some order.
  EXPECT_TRUE((hits[0] == 2 && hits[1] == 3) ||
              (hits[0] == 3 && hits[1] == 2));
}

// The brute-force scan NearestNeighborIndex::Query used before the
// inverted-index backing, kept verbatim as the equivalence oracle.
std::vector<int> BruteForceQuery(const TfidfEmbedder& embedder,
                                 const std::vector<SparseVector>& vectors,
                                 std::string_view query, int k, int exclude) {
  SparseVector qv = embedder.Embed(query);
  std::vector<std::pair<double, int>> scored;
  scored.reserve(vectors.size());
  for (size_t i = 0; i < vectors.size(); ++i) {
    if (static_cast<int>(i) == exclude) continue;
    scored.emplace_back(TfidfEmbedder::Cosine(qv, vectors[i]),
                        static_cast<int>(i));
  }
  const size_t take = std::min(scored.size(), static_cast<size_t>(k));
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<int> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

// A realistic small corpus: streamed product records with duplicates and
// near-duplicate siblings, the distribution the blocker actually queries.
std::vector<std::string> StreamedCorpus(size_t n) {
  data::CorpusStreamConfig config;
  config.num_entities = n;
  config.seed = 77;
  data::CorpusStream stream(config);
  std::vector<std::string> surfaces;
  data::Entity entity;
  while (stream.Next(&entity)) surfaces.push_back(entity.surface);
  return surfaces;
}

TEST(NearestNeighborTest, MatchesBruteForceExactly) {
  const std::vector<std::string> corpus = StreamedCorpus(400);
  TfidfEmbedder embedder;
  embedder.Fit(corpus);
  NearestNeighborIndex index(&embedder);
  index.AddAll(corpus);
  std::vector<SparseVector> vectors;
  for (const std::string& doc : corpus) vectors.push_back(embedder.Embed(doc));
  for (size_t i = 0; i < corpus.size(); i += 7) {
    for (int k : {1, 3, 8}) {
      EXPECT_EQ(index.Query(corpus[i], k, static_cast<int>(i)),
                BruteForceQuery(embedder, vectors, corpus[i], k,
                                static_cast<int>(i)))
          << "query " << i << " k " << k;
    }
  }
  // No-exclude and out-of-vocabulary queries (all scores zero).
  EXPECT_EQ(index.Query(corpus[0], 5),
            BruteForceQuery(embedder, vectors, corpus[0], 5, -1));
  EXPECT_EQ(index.Query("zzz qqq unseen", 4),
            BruteForceQuery(embedder, vectors, "zzz qqq unseen", 4, -1));
  // k larger than the corpus drains into the zero-score tail.
  EXPECT_EQ(index.Query(corpus[3], 1000, 3),
            BruteForceQuery(embedder, vectors, corpus[3], 1000, 3));
}

TEST(InvertedIndexTest, BuildDeterministicAcrossThreadCounts) {
  const std::vector<std::string> corpus = StreamedCorpus(300);
  TfidfEmbedder embedder;
  embedder.Fit(corpus);
  std::vector<SparseVector> vectors;
  for (const std::string& doc : corpus) vectors.push_back(embedder.Embed(doc));

  InvertedIndexOptions options;
  options.max_posting_length = 8;
  options.max_df_fraction = 0.2;
  InvertedIndex one(options);
  one.Build(vectors, 1);
  InvertedIndex eight(options);
  eight.Build(vectors, 8);

  ASSERT_EQ(one.num_postings(), eight.num_postings());
  for (const SparseVector& vec : vectors) {
    for (const auto& [term, weight] : vec) {
      const auto* a = one.PostingsFor(term);
      const auto* b = eight.PostingsFor(term);
      ASSERT_EQ(a == nullptr, b == nullptr);
      if (a == nullptr) continue;
      ASSERT_EQ(a->size(), b->size());
      for (size_t i = 0; i < a->size(); ++i) {
        EXPECT_EQ((*a)[i].doc, (*b)[i].doc);
        EXPECT_EQ((*a)[i].weight, (*b)[i].weight);
      }
    }
  }
}

TEST(InvertedIndexTest, PruningCapsPostingLists) {
  const std::vector<std::string> corpus = StreamedCorpus(300);
  TfidfEmbedder embedder;
  embedder.Fit(corpus);
  std::vector<SparseVector> vectors;
  for (const std::string& doc : corpus) vectors.push_back(embedder.Embed(doc));

  InvertedIndexOptions options;
  options.max_posting_length = 4;
  InvertedIndex pruned(options);
  pruned.Build(vectors, 2);
  InvertedIndex exact;
  exact.Build(vectors, 2);
  EXPECT_LT(pruned.num_postings(), exact.num_postings());
  for (const SparseVector& vec : vectors) {
    for (const auto& [term, weight] : vec) {
      const auto* postings = pruned.PostingsFor(term);
      if (postings != nullptr) EXPECT_LE(postings->size(), 4u);
    }
  }
}

}  // namespace
}  // namespace tailormatch::text
