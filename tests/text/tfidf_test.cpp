#include "text/tfidf.h"

#include <gtest/gtest.h>

namespace tailormatch::text {
namespace {

std::vector<std::string> Corpus() {
  return {
      "jabra evolve headset stereo",
      "jabra elite earbuds wireless",
      "sram cassette bike part",
      "sram chainring bike part",
      "logitech mouse wireless",
  };
}

TEST(TfidfTest, EmbedIsUnitNorm) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  SparseVector v = embedder.Embed("jabra evolve headset");
  double norm = 0.0;
  for (auto& [term, weight] : v) norm += weight * weight;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(TfidfTest, CosineSelfIsOne) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  SparseVector v = embedder.Embed("sram cassette bike");
  EXPECT_NEAR(TfidfEmbedder::Cosine(v, v), 1.0, 1e-5);
}

TEST(TfidfTest, UnseenTermsIgnored) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  SparseVector v = embedder.Embed("zzz qqq www");
  EXPECT_TRUE(v.empty());
}

TEST(TfidfTest, RareTermsWeighMore) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  // "headset" appears once, "bike" twice; similarity driven by rare terms.
  const double rare = TfidfEmbedder::Cosine(embedder.Embed("headset"),
                                            embedder.Embed("headset bike"));
  const double common = TfidfEmbedder::Cosine(embedder.Embed("bike"),
                                              embedder.Embed("headset bike"));
  EXPECT_GT(rare, common);
}

TEST(NearestNeighborTest, FindsExactMatchFirst) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  NearestNeighborIndex index(&embedder);
  index.AddAll(Corpus());
  std::vector<int> hits = index.Query("jabra evolve headset stereo", 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0], 0);
}

TEST(NearestNeighborTest, ExcludeSkipsIndex) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  NearestNeighborIndex index(&embedder);
  index.AddAll(Corpus());
  std::vector<int> hits = index.Query("jabra evolve headset stereo", 2,
                                      /*exclude=*/0);
  for (int hit : hits) EXPECT_NE(hit, 0);
}

TEST(NearestNeighborTest, KLargerThanIndex) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  NearestNeighborIndex index(&embedder);
  index.Add("jabra evolve");
  std::vector<int> hits = index.Query("jabra", 10);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(NearestNeighborTest, SemanticNeighborsRankAboveUnrelated) {
  TfidfEmbedder embedder;
  embedder.Fit(Corpus());
  NearestNeighborIndex index(&embedder);
  index.AddAll(Corpus());
  std::vector<int> hits = index.Query("sram bike cassette", 5);
  ASSERT_GE(hits.size(), 2u);
  // The two sram/bike documents (2, 3) should come first in some order.
  EXPECT_TRUE((hits[0] == 2 && hits[1] == 3) ||
              (hits[0] == 3 && hits[1] == 2));
}

}  // namespace
}  // namespace tailormatch::text
