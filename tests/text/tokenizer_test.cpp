#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace tailormatch::text {
namespace {

std::vector<std::string> Corpus() {
  return {
      "jabra evolve 80 ms stereo headset",
      "jabra evolve 80 uc stereo skype",
      "sram pg-730 cassette 7sp 12-32t",
      "sram pg-1130 cassette 11sp 11-36t",
      "logitech mx master 3 wireless mouse",
      "jabra elite 75t earbuds",
      "sram red axs groupset",
      "evolve 65 headset jabra",
  };
}

Tokenizer Trained() {
  Tokenizer tokenizer;
  tokenizer.Train(Corpus(), /*max_vocab=*/2000, /*min_count=*/2);
  return tokenizer;
}

TEST(PreTokenizeTest, SplitsLettersDigitsPunct) {
  EXPECT_EQ(PreTokenize("Jabra EVOLVE-80 (7899)"),
            (std::vector<std::string>{"jabra", "evolve", "-", "80", "(",
                                      "7899", ")"}));
}

TEST(PreTokenizeTest, SplitsLetterDigitBoundary) {
  EXPECT_EQ(PreTokenize("pg730"), (std::vector<std::string>{"pg", "730"}));
  EXPECT_EQ(PreTokenize("7sp"), (std::vector<std::string>{"7", "sp"}));
}

TEST(PreTokenizeTest, EmptyAndWhitespace) {
  EXPECT_TRUE(PreTokenize("").empty());
  EXPECT_TRUE(PreTokenize("   \t\n").empty());
}

TEST(TokenizerTest, FrequentWordsGetWholeTokens) {
  Tokenizer tokenizer = Trained();
  EXPECT_TRUE(tokenizer.vocab().HasToken("jabra"));
  EXPECT_TRUE(tokenizer.vocab().HasToken("evolve"));
  EXPECT_TRUE(tokenizer.vocab().HasToken("cassette"));
}

TEST(TokenizerTest, DigitsAlwaysMapToBuckets) {
  Tokenizer tokenizer = Trained();
  std::vector<int> a = tokenizer.Encode("80");
  std::vector<int> b = tokenizer.Encode("80");
  std::vector<int> c = tokenizer.Encode("81");
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a, b);                       // stable
  EXPECT_TRUE(Tokenizer::IsDigitBucketId(a[0]));
  EXPECT_NE(a[0], c[0]);                 // different numbers, different ids
}

TEST(TokenizerTest, UnseenNumberStillBuckets) {
  Tokenizer tokenizer = Trained();
  std::vector<int> ids = tokenizer.Encode("987654");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_TRUE(Tokenizer::IsDigitBucketId(ids[0]));
}

TEST(TokenizerTest, UnknownWordDecomposesToPieces) {
  Tokenizer tokenizer = Trained();
  std::vector<int> ids = tokenizer.Encode("zzqxv");
  EXPECT_GE(ids.size(), 1u);
  for (int id : ids) {
    EXPECT_NE(id, Vocab::kUnkId);  // char pieces always available
  }
}

TEST(TokenizerTest, EncodeForModelAddsSpecials) {
  Tokenizer tokenizer = Trained();
  std::vector<int> ids = tokenizer.EncodeForModel("jabra evolve", 16);
  ASSERT_GE(ids.size(), 3u);
  EXPECT_EQ(ids.front(), Vocab::kClsId);
  EXPECT_EQ(ids.back(), Vocab::kSepId);
}

TEST(TokenizerTest, EncodeForModelTruncates) {
  Tokenizer tokenizer = Trained();
  std::string lengthy;
  for (int i = 0; i < 100; ++i) lengthy += "jabra evolve ";
  std::vector<int> ids = tokenizer.EncodeForModel(lengthy, 10);
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(ids.back(), Vocab::kSepId);
}

TEST(TokenizerTest, DecodeRoundTripsKnownWords) {
  Tokenizer tokenizer = Trained();
  std::vector<int> ids = tokenizer.Encode("jabra evolve cassette");
  EXPECT_EQ(tokenizer.Decode(ids), "jabra evolve cassette");
}

TEST(TokenizerTest, FromVocabTokensPreservesIds) {
  Tokenizer original = Trained();
  Tokenizer restored = Tokenizer::FromVocabTokens(original.vocab().tokens());
  EXPECT_EQ(restored.vocab_size(), original.vocab_size());
  const std::string text = "jabra evolve 80 pg-730 zzqxv";
  EXPECT_EQ(restored.Encode(text), original.Encode(text));
}

TEST(TokenizerTest, VocabSizeRespectsCap) {
  std::vector<std::string> big_corpus;
  for (int i = 0; i < 500; ++i) {
    big_corpus.push_back("word" + std::to_string(i) + "x unique" +
                         std::to_string(i) + "y");
  }
  big_corpus.insert(big_corpus.end(), big_corpus.begin(), big_corpus.end());
  Tokenizer tokenizer;
  tokenizer.Train(big_corpus, /*max_vocab=*/900, /*min_count=*/2);
  EXPECT_LE(tokenizer.vocab_size(), 900);
}

TEST(VocabTest, SpecialTokensFirst) {
  Vocab vocab;
  EXPECT_EQ(vocab.GetToken(Vocab::kPadId), "[PAD]");
  EXPECT_EQ(vocab.GetToken(Vocab::kUnkId), "[UNK]");
  EXPECT_EQ(vocab.GetToken(Vocab::kClsId), "[CLS]");
  EXPECT_EQ(vocab.GetToken(Vocab::kSepId), "[SEP]");
}

TEST(VocabTest, AddTokenIdempotent) {
  Vocab vocab;
  const int first = vocab.AddToken("hello");
  const int second = vocab.AddToken("hello");
  EXPECT_EQ(first, second);
  EXPECT_EQ(vocab.GetId("hello"), first);
}

TEST(VocabTest, UnknownReturnsUnk) {
  Vocab vocab;
  EXPECT_EQ(vocab.GetId("nonexistent"), Vocab::kUnkId);
}

}  // namespace
}  // namespace tailormatch::text
