// Property-based tests for the text substrate: similarity metrics must be
// proper similarities (identity, symmetry, bounded range) on arbitrary
// generated surfaces, and the tokenizer must round-trip anything the data
// generators can produce.

#include <gtest/gtest.h>

#include "data/generator.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace tailormatch::text {
namespace {

// A similarity metric under test.
using Metric = double (*)(std::string_view, std::string_view);

struct MetricCase {
  const char* name;
  Metric metric;
};

class SimilarityPropertyTest : public ::testing::TestWithParam<MetricCase> {};

std::vector<std::string> GeneratedSurfaces(int count, uint64_t seed) {
  data::ProductGenerator products((data::ProductGeneratorConfig()));
  data::ScholarGenerator scholars((data::ScholarGeneratorConfig()));
  Rng rng(seed);
  std::vector<std::string> surfaces;
  for (int i = 0; i < count; ++i) {
    surfaces.push_back(rng.NextBool(0.5)
                           ? products.SampleBase(rng).surface
                           : scholars.SampleBase(rng).surface);
  }
  return surfaces;
}

TEST_P(SimilarityPropertyTest, IdentityIsMaximal) {
  Metric metric = GetParam().metric;
  for (const std::string& surface : GeneratedSurfaces(25, 1)) {
    EXPECT_NEAR(metric(surface, surface), 1.0, 1e-9) << surface;
  }
}

TEST_P(SimilarityPropertyTest, Symmetric) {
  Metric metric = GetParam().metric;
  std::vector<std::string> surfaces = GeneratedSurfaces(20, 2);
  for (size_t i = 0; i + 1 < surfaces.size(); i += 2) {
    EXPECT_NEAR(metric(surfaces[i], surfaces[i + 1]),
                metric(surfaces[i + 1], surfaces[i]), 1e-9);
  }
}

TEST_P(SimilarityPropertyTest, BoundedUnitInterval) {
  Metric metric = GetParam().metric;
  std::vector<std::string> surfaces = GeneratedSurfaces(30, 3);
  for (size_t i = 0; i + 1 < surfaces.size(); i += 2) {
    const double value = metric(surfaces[i], surfaces[i + 1]);
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Metrics, SimilarityPropertyTest,
    ::testing::Values(MetricCase{"NormalizedLevenshtein",
                                 &NormalizedLevenshtein},
                      MetricCase{"JaroWinkler", &JaroWinkler},
                      MetricCase{"TokenJaccard", &TokenJaccard},
                      MetricCase{"TrigramDice", &TrigramDice},
                      MetricCase{"HybridSimilarity", &HybridSimilarity}),
    [](const ::testing::TestParamInfo<MetricCase>& info) {
      return info.param.name;
    });

class TokenizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerPropertyTest, EncodeNeverEmitsUnkOnGeneratedSurfaces) {
  std::vector<std::string> corpus = GeneratedSurfaces(200, GetParam());
  Tokenizer tokenizer;
  tokenizer.Train(corpus, 4000, 2);
  // Fresh surfaces from a different stream: subword fallback + digit
  // buckets must cover everything.
  for (const std::string& surface :
       GeneratedSurfaces(50, GetParam() ^ 0xffff)) {
    for (int id : tokenizer.Encode(surface)) {
      EXPECT_NE(id, Vocab::kUnkId) << surface;
    }
  }
}

TEST_P(TokenizerPropertyTest, EncodingIsStable) {
  std::vector<std::string> corpus = GeneratedSurfaces(100, GetParam());
  Tokenizer tokenizer;
  tokenizer.Train(corpus, 3000, 2);
  for (const std::string& surface : GeneratedSurfaces(20, GetParam() + 7)) {
    EXPECT_EQ(tokenizer.Encode(surface), tokenizer.Encode(surface));
  }
}

TEST_P(TokenizerPropertyTest, SameNumbersSameIdsDifferentNumbersDiffer) {
  std::vector<std::string> corpus = GeneratedSurfaces(100, GetParam());
  Tokenizer tokenizer;
  tokenizer.Train(corpus, 3000, 2);
  Rng rng(GetParam());
  int collisions = 0;
  for (int i = 0; i < 30; ++i) {
    const int value = rng.NextInt(10, 99999);
    const std::string a = std::to_string(value);
    const std::string b = std::to_string(value + 1 + rng.NextInt(0, 50));
    EXPECT_EQ(tokenizer.Encode(a), tokenizer.Encode(a));
    if (tokenizer.Encode(a) == tokenizer.Encode(b)) ++collisions;
  }
  // Hash buckets collide with probability ~1/512 per draw; systematic
  // equality would indicate broken bucketing.
  EXPECT_LE(collisions, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerPropertyTest,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace tailormatch::text
