#include "explain/explanation.h"

#include <set>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "util/string_util.h"

namespace tailormatch::explain {
namespace {

data::EntityPair MakeProductPair(bool label) {
  data::ProductGenerator generator(data::ProductGeneratorConfig{});
  Rng rng(42);
  data::EntityPair pair;
  data::Entity base = generator.SampleBase(rng);
  pair.left = generator.RenderVariant(base, 0.15, rng);
  if (label) {
    pair.right = generator.RenderVariant(base, 0.5, rng);
  } else {
    pair.right =
        generator.RenderVariant(generator.MutateToSibling(base, rng), 0.2, rng);
  }
  pair.label = label;
  return pair;
}

TEST(ExplanationTest, StructuredTextMatchesFigure4Format) {
  ExplanationGenerator generator(ExplanationStyle::kStructured);
  Explanation explanation = generator.Generate(MakeProductPair(true));
  EXPECT_TRUE(StartsWith(explanation.text, "Yes."));
  EXPECT_NE(explanation.text.find("attribute="), std::string::npos);
  EXPECT_NE(explanation.text.find("importance="), std::string::npos);
  EXPECT_NE(explanation.text.find("values="), std::string::npos);
  EXPECT_NE(explanation.text.find("###"), std::string::npos);
  EXPECT_NE(explanation.text.find("similarity="), std::string::npos);
}

TEST(ExplanationTest, NoImportanceAblationOmitsImportance) {
  ExplanationGenerator generator(ExplanationStyle::kStructuredNoImportance);
  Explanation explanation = generator.Generate(MakeProductPair(true));
  EXPECT_EQ(explanation.text.find("importance="), std::string::npos);
  EXPECT_NE(explanation.text.find("similarity="), std::string::npos);
}

TEST(ExplanationTest, NoImpSimAblationOmitsBoth) {
  ExplanationGenerator generator(
      ExplanationStyle::kStructuredNoImportanceNoSimilarity);
  Explanation explanation = generator.Generate(MakeProductPair(false));
  EXPECT_EQ(explanation.text.find("importance="), std::string::npos);
  EXPECT_EQ(explanation.text.find("similarity="), std::string::npos);
  EXPECT_NE(explanation.text.find("attribute="), std::string::npos);
}

TEST(ExplanationTest, TextualStartsWithVerdict) {
  for (ExplanationStyle style :
       {ExplanationStyle::kLongTextual, ExplanationStyle::kWadhwa}) {
    ExplanationGenerator generator(style);
    Explanation yes = generator.Generate(MakeProductPair(true));
    Explanation no = generator.Generate(MakeProductPair(false));
    EXPECT_TRUE(StartsWith(yes.text, "Yes.")) << yes.text;
    EXPECT_TRUE(StartsWith(no.text, "No.")) << no.text;
  }
}

TEST(ExplanationTest, LongTextualIsLonger) {
  // The paper reports ~293 tokens for open-ended vs ~90 for Wadhwa-style.
  data::EntityPair pair = MakeProductPair(true);
  ExplanationGenerator long_gen(ExplanationStyle::kLongTextual);
  ExplanationGenerator short_gen(ExplanationStyle::kWadhwa);
  EXPECT_GT(long_gen.Generate(pair).text.size(),
            2 * short_gen.Generate(pair).text.size());
}

TEST(ExplanationTest, MatchingAttributesScoreHighSimilarity) {
  ExplanationGenerator generator(ExplanationStyle::kStructured);
  Explanation explanation = generator.Generate(MakeProductPair(true));
  double brand_similarity = -1.0;
  for (const AttributeExplanation& attr : explanation.attributes) {
    if (attr.attribute == "brand" && attr.right_value != "missing") {
      brand_similarity = attr.similarity;
    }
  }
  if (brand_similarity >= 0.0) {
    EXPECT_GT(brand_similarity, 0.6);
  }
}

TEST(ExplanationTest, MissingAttributeGetsZeroSimilarity) {
  data::EntityPair pair;
  pair.left.attributes = {{"brand", "jabra"}, {"model", "kx-80"}};
  pair.left.surface = "jabra kx-80";
  pair.right.attributes = {{"brand", "jabra"}};
  pair.right.surface = "jabra";
  pair.label = true;
  ExplanationGenerator generator(ExplanationStyle::kStructured);
  Explanation explanation = generator.Generate(pair);
  for (const AttributeExplanation& attr : explanation.attributes) {
    if (attr.attribute == "model") {
      EXPECT_EQ(attr.right_value, "missing");
      EXPECT_DOUBLE_EQ(attr.similarity, 0.0);
    }
  }
}

TEST(ExplanationTest, AttributeSlotsStable) {
  EXPECT_EQ(ExplanationGenerator::AttributeSlot("brand"), 0);
  EXPECT_EQ(ExplanationGenerator::AttributeSlot("model"), 2);
  EXPECT_EQ(ExplanationGenerator::AttributeSlot("sku"), 6);
  EXPECT_EQ(ExplanationGenerator::AttributeSlot("title"), 1);
  EXPECT_EQ(ExplanationGenerator::AttributeSlot("unknown-attr"), -1);
}

TEST(ExplanationTest, ModelImportanceDominatesBrand) {
  // Figure 4: model importance 0.95 vs brand 0.05-ish.
  EXPECT_GT(ExplanationGenerator::AttributeImportance("model"),
            ExplanationGenerator::AttributeImportance("brand"));
  EXPECT_GT(ExplanationGenerator::AttributeImportance("title"),
            ExplanationGenerator::AttributeImportance("venue"));
}

TEST(ExplanationTest, AugmentFillsStructuredTargets) {
  ExplanationGenerator generator(ExplanationStyle::kStructured);
  data::EntityPair pair = MakeProductPair(true);
  llm::TrainExample example;
  generator.Augment(pair, &example, 8, 32);
  EXPECT_TRUE(example.has_attr_targets);
  EXPECT_FALSE(example.has_text_targets);
  EXPECT_EQ(example.attr_targets.size(), 8u);
  // At least the core product attributes are masked in.
  int active = 0;
  for (float m : example.attr_mask) active += m > 0.0f ? 1 : 0;
  EXPECT_GE(active, 5);
}

TEST(ExplanationTest, AugmentFillsTextTargets) {
  ExplanationGenerator generator(ExplanationStyle::kWadhwa);
  data::EntityPair pair = MakeProductPair(false);
  llm::TrainExample example;
  generator.Augment(pair, &example, 8, 32);
  EXPECT_TRUE(example.has_text_targets);
  EXPECT_FALSE(example.has_attr_targets);
  int hot = 0;
  for (float t : example.text_targets) hot += t > 0.0f ? 1 : 0;
  EXPECT_GT(hot, 3);
}

TEST(ExplanationTest, NoneStyleLeavesExampleUntouched) {
  ExplanationGenerator generator(ExplanationStyle::kNone);
  llm::TrainExample example;
  generator.Augment(MakeProductPair(true), &example, 8, 32);
  EXPECT_FALSE(example.has_attr_targets);
  EXPECT_FALSE(example.has_text_targets);
}

TEST(ExplanationTest, NoImportanceUsesUniformWeights) {
  ExplanationGenerator generator(ExplanationStyle::kStructuredNoImportance);
  llm::TrainExample example;
  generator.Augment(MakeProductPair(true), &example, 8, 32);
  for (size_t i = 0; i < example.attr_weights.size(); ++i) {
    if (example.attr_mask[i] > 0.0f) {
      EXPECT_FLOAT_EQ(example.attr_weights[i], 1.0f);
    }
  }
}

TEST(ExplanationTest, DeterministicForSamePair) {
  ExplanationGenerator generator(ExplanationStyle::kStructured);
  data::EntityPair pair = MakeProductPair(true);
  EXPECT_EQ(generator.Generate(pair).text, generator.Generate(pair).text);
}

TEST(ExplanationTest, StyleNamesRoundTrip) {
  std::set<std::string> names;
  for (ExplanationStyle style : AllExplanationStyles()) {
    names.insert(ExplanationStyleName(style));
  }
  EXPECT_EQ(names.size(), 6u);
  EXPECT_STREQ(ExplanationStyleTableName(ExplanationStyle::kWadhwa),
               "Wadhwa et al.");
}

}  // namespace
}  // namespace tailormatch::explain
