// End-to-end integration tests: the full Figure 1 pipeline (pretrained
// zero-shot model -> optional selection/generation -> LoRA fine-tuning ->
// evaluation through the natural-language response parser), exercised at a
// small scale.

#include <cstdlib>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "select/error_selection.h"

namespace tailormatch {
namespace {

core::PipelineConfig SmallConfig() {
  core::PipelineConfig config;
  config.family = llm::ModelFamily::kLlama8B;  // fastest family
  config.benchmark = data::BenchmarkId::kWdcSmall;
  config.context.data_scale = 0.08;
  config.context.eval_max_pairs = 300;
  config.context.valid_max_pairs = 150;
  config.context.epochs_override = 4;
  config.context.cache_dir =
      (std::filesystem::temp_directory_path() / "tm_e2e_cache").string();
  return config;
}

TEST(EndToEndTest, StandardFineTuningImprovesWdc) {
  core::PipelineConfig config = SmallConfig();
  core::PipelineReport report = core::RunPipeline(config);
  // The paper's headline: fine-tuning significantly improves the small
  // model in a non-transfer setting.
  EXPECT_GT(report.fine_tuned_f1, report.zero_shot_f1 + 5.0);
  EXPECT_EQ(report.final_train_size, report.original_train_size);
  ASSERT_NE(report.model, nullptr);

  // The fine-tuned model answers through the Matcher API.
  core::Matcher matcher(report.model);
  core::MatchDecision decision =
      matcher.Match("sonara pulse zmw-304 printer pro",
                    "sonara pulse zmw 304 printer");
  EXPECT_TRUE(decision.parseable);

  // The run left a structured trace in the global metrics registry: every
  // pipeline stage appears as a named span with at least one observation.
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  for (const char* path :
       {"pipeline", "pipeline.data_load", "pipeline.pretrain_load",
        "pipeline.zero_shot_eval", "pipeline.selection", "pipeline.fine_tune",
        "pipeline.eval"}) {
    const obs::SpanNode* span = snapshot.FindSpan(path);
    ASSERT_NE(span, nullptr) << "missing span " << path;
    EXPECT_GE(span->count, 1) << path;
    EXPECT_GE(span->total_seconds, 0.0) << path;
  }

  // Forward passes were counted and timed.
  bool forward_hist_found = false;
  for (const obs::HistogramStats& h : snapshot.histograms) {
    if (h.name == "sim_llm.forward") {
      forward_hist_found = true;
      EXPECT_GT(h.count, 0);
      EXPECT_GE(h.p95, h.p50);
    }
  }
  EXPECT_TRUE(forward_hist_found);

  // The trainer exported per-epoch gauges.
  bool epoch_found = false, loss_found = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "trainer.epoch") {
      epoch_found = true;
      EXPECT_GE(value, 1.0);
    }
    if (name == "trainer.epoch_loss") loss_found = true;
  }
  EXPECT_TRUE(epoch_found);
  EXPECT_TRUE(loss_found);
}

TEST(EndToEndTest, FilteringShrinksTrainingSet) {
  core::PipelineConfig config = SmallConfig();
  config.error_based_filtering = true;
  config.relevancy_filtering = true;
  core::PipelineReport report = core::RunPipeline(config);
  EXPECT_LT(report.final_train_size, report.original_train_size);
  EXPECT_GT(report.fine_tuned_f1, report.zero_shot_f1);
}

TEST(EndToEndTest, GenerationGrowsTrainingSet) {
  core::PipelineConfig config = SmallConfig();
  config.generate_examples = true;  // generation implies teacher filtering
  config.context.epochs_override = 2;
  core::PipelineReport report = core::RunPipeline(config);
  EXPECT_GT(report.final_train_size, report.original_train_size);
}

TEST(EndToEndTest, ZeroShotCheckpointCacheRoundTrips) {
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "tm_e2e_cache").string();
  auto first = llm::GetZeroShotModel(llm::ModelFamily::kLlama8B, cache_dir);
  auto second = llm::GetZeroShotModel(llm::ModelFamily::kLlama8B, cache_dir);
  const std::string probe =
      "Do the two entity descriptions refer to the same real-world product? "
      "Entity 1: jabra evolve 80 Entity 2: jabra evolve 80";
  EXPECT_DOUBLE_EQ(first->PredictMatchProbability(probe),
                   second->PredictMatchProbability(probe));
}

TEST(EndToEndTest, PipelineResumesFromJournal) {
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "tm_e2e_resume").string();
  std::filesystem::remove_all(cache_dir);
  core::PipelineConfig config = SmallConfig();
  config.context.cache_dir = cache_dir;
  config.context.epochs_override = 2;
  config.resume_key = "resume-test";

  core::PipelineReport first = core::RunPipeline(config);

  const auto skipped = [] {
    for (const auto& [name, value] :
         obs::MetricsRegistry::Global().Snapshot().counters) {
      if (name == "pipeline.stages_skipped") return value;
    }
    return static_cast<int64_t>(0);
  };
  const int64_t skipped_before = skipped();

  // A "restarted" run with the same key: every journaled stage is skipped
  // and the reported numbers are identical to the first run's.
  core::PipelineReport second = core::RunPipeline(config);
  EXPECT_EQ(skipped(), skipped_before + 3);  // zero-shot eval, fine-tune, eval
  EXPECT_DOUBLE_EQ(second.zero_shot_f1, first.zero_shot_f1);
  EXPECT_DOUBLE_EQ(second.fine_tuned_f1, first.fine_tuned_f1);
  EXPECT_EQ(second.train_stats.best_epoch, first.train_stats.best_epoch);
  EXPECT_DOUBLE_EQ(second.train_stats.best_score, first.train_stats.best_score);
  EXPECT_EQ(second.train_stats.rollbacks, first.train_stats.rollbacks);
  EXPECT_FLOAT_EQ(second.train_stats.final_learning_rate,
                  first.train_stats.final_learning_rate);
  ASSERT_NE(second.model, nullptr);  // reloaded from the checkpoint cache

  std::filesystem::remove_all(cache_dir);
}

TEST(EndToEndTest, ErrorBasedSelectionRuns) {
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "tm_e2e_cache").string();
  auto zero_shot = llm::GetZeroShotModel(llm::ModelFamily::kLlama8B, cache_dir);
  data::Benchmark small = data::BuildBenchmark(data::BenchmarkId::kWdcSmall,
                                               0.05);
  data::Benchmark large = data::BuildBenchmark(data::BenchmarkId::kWdcLarge,
                                               0.02);
  select::ErrorSelectionOptions options;
  options.rounds = 2;
  options.added_per_round = 60;
  options.epochs_per_round = 2;
  options.valid_max_pairs = 120;
  options.train.learning_rate = 2e-3f;
  options.lora.rank = 4;
  select::ErrorSelectionResult result = select::RunErrorBasedSelection(
      *zero_shot, small.train, large.train, small.valid, options);
  ASSERT_NE(result.model, nullptr);
  EXPECT_EQ(result.round_valid_f1.size(), 2u);
  EXPECT_GE(result.best_round, 0);
  ASSERT_EQ(result.train_sizes.size(), 2u);
  EXPECT_GT(result.train_sizes[1], result.train_sizes[0]);
}

}  // namespace
}  // namespace tailormatch
