#include "nn/layers.h"

#include <gtest/gtest.h>

#include "nn/optimizer.h"

namespace tailormatch::nn {
namespace {

ForwardContext EvalCtx() { return ForwardContext{}; }

TEST(LoraLinearTest, ForwardMatchesManual) {
  Rng rng(1);
  LoraLinear layer(2, 2, rng);
  layer.weight() = Tensor::FromData(2, 2, {1, 2, 3, 4}, true);
  layer.bias() = Tensor::FromData(1, 2, {0.5f, -0.5f}, true);
  Tensor x = Tensor::FromData(1, 2, {1, 1});
  Tensor y = layer.Forward(x, EvalCtx());
  EXPECT_FLOAT_EQ(y.at(0, 0), 4.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 5.5f);
}

TEST(LoraLinearTest, EnableLoraIsInitiallyNoOp) {
  Rng rng(2);
  LoraLinear layer(4, 3, rng);
  Tensor x = Tensor::Randn(2, 4, 1.0f, rng, false);
  Tensor before = layer.Forward(x, EvalCtx());
  LoraConfig config;
  config.rank = 2;
  layer.EnableLora(config, rng);
  Tensor after = layer.Forward(x, EvalCtx());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before.data()[i], after.data()[i], 1e-5f);
  }
}

TEST(LoraLinearTest, LoraFreezesBaseParameters) {
  Rng rng(3);
  LoraLinear layer(4, 3, rng);
  EXPECT_EQ(layer.Parameters().size(), 2u);  // W, b
  LoraConfig config;
  config.rank = 2;
  layer.EnableLora(config, rng);
  std::vector<Tensor> params = layer.Parameters();
  EXPECT_EQ(params.size(), 2u);  // A, B
  EXPECT_FALSE(layer.weight().requires_grad());
  EXPECT_EQ(params[0].rows(), 4);
  EXPECT_EQ(params[0].cols(), 2);
  EXPECT_EQ(params[1].rows(), 2);
  EXPECT_EQ(params[1].cols(), 3);
}

TEST(LoraLinearTest, MergePreservesFunction) {
  Rng rng(4);
  LoraLinear layer(4, 4, rng);
  LoraConfig config;
  config.rank = 2;
  config.dropout = 0.0f;
  layer.EnableLora(config, rng);
  // Perturb the adapters so the merge is non-trivial.
  std::vector<Tensor> params = layer.Parameters();
  for (Tensor& p : params) {
    for (float& v : p.data()) v += 0.1f;
  }
  Tensor x = Tensor::Randn(3, 4, 1.0f, rng, false);
  Tensor with_adapter = layer.Forward(x, EvalCtx());
  layer.MergeLora();
  EXPECT_FALSE(layer.lora_enabled());
  Tensor merged = layer.Forward(x, EvalCtx());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_NEAR(with_adapter.data()[i], merged.data()[i], 1e-4f);
  }
}

TEST(LoraLinearTest, TrainingAdaptsOnlyAdapters) {
  Rng rng(5);
  LoraLinear layer(3, 2, rng);
  LoraConfig config;
  config.rank = 2;
  config.dropout = 0.0f;
  layer.EnableLora(config, rng);
  std::vector<float> base_before = layer.weight().data();
  AdamW optimizer(layer.Parameters(), 1e-2f);
  Rng drop_rng(6);
  for (int step = 0; step < 20; ++step) {
    ForwardContext ctx;
    ctx.training = true;
    ctx.rng = &drop_rng;
    Tensor x = Tensor::FromData(1, 3, {1.0f, -1.0f, 0.5f});
    Tensor y = layer.Forward(x, ctx);
    Tensor loss = SoftmaxCrossEntropy(y, 1);
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
  }
  EXPECT_EQ(layer.weight().data(), base_before);  // frozen base untouched
  ForwardContext ctx;
  Tensor x = Tensor::FromData(1, 3, {1.0f, -1.0f, 0.5f});
  Tensor y = layer.Forward(x, ctx);
  EXPECT_GT(y.at(0, 1), y.at(0, 0));  // adapters learned the target
}

TEST(EmbeddingTest, ForwardAndFreeze) {
  Rng rng(7);
  Embedding embedding(10, 4, rng);
  Tensor out = embedding.Forward({3, 7});
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 4);
  EXPECT_EQ(embedding.Parameters().size(), 1u);
  embedding.SetTrainable(false);
  EXPECT_TRUE(embedding.Parameters().empty());
}

TEST(LayerNormTest, OutputIsNormalized) {
  LayerNorm norm(6);
  Rng rng(8);
  Tensor x = Tensor::Randn(3, 6, 4.0f, rng, false);
  Tensor out = norm.Forward(x);
  for (int i = 0; i < 3; ++i) {
    float mean = 0.0f, var = 0.0f;
    for (int j = 0; j < 6; ++j) mean += out.at(i, j);
    mean /= 6.0f;
    for (int j = 0; j < 6; ++j) {
      var += (out.at(i, j) - mean) * (out.at(i, j) - mean);
    }
    var /= 6.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(MultiHeadAttentionTest, ShapePreserved) {
  Rng rng(9);
  MultiHeadAttention attention(8, 2, rng);
  Tensor x = Tensor::Randn(5, 8, 1.0f, rng, false);
  Tensor out = attention.Forward(x, EvalCtx());
  EXPECT_EQ(out.rows(), 5);
  EXPECT_EQ(out.cols(), 8);
}

TEST(MultiHeadAttentionTest, RequiresDivisibleHeads) {
  Rng rng(10);
  EXPECT_DEATH(MultiHeadAttention(10, 3, rng), "divisible");
}

TEST(TransformerBlockTest, ForwardShapeAndDeterminism) {
  Rng rng(11);
  TransformerBlock block(8, 2, 0.1f, rng);
  Tensor x = Tensor::Randn(4, 8, 1.0f, rng, false);
  Tensor a = block.Forward(x, EvalCtx());
  Tensor b = block.Forward(x, EvalCtx());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);  // eval mode: no dropout
  }
}

TEST(TransformerBlockTest, LoraReducesTrainableCount) {
  Rng rng(12);
  TransformerBlock block(8, 2, 0.1f, rng);
  const size_t full = block.Parameters().size();
  LoraConfig config;
  config.rank = 2;
  Rng lrng(13);
  block.EnableLora(config, lrng);
  size_t trainable_elements = 0;
  for (const Tensor& p : block.Parameters()) trainable_elements += p.size();
  size_t state_elements = 0;
  for (const Tensor& p : block.StateTensors()) state_elements += p.size();
  EXPECT_LT(trainable_elements, state_elements / 2);
  EXPECT_GE(block.Parameters().size(), full);  // adapters + norms
}

TEST(OptimizerTest, SgdDescendsQuadratic) {
  Tensor w = Tensor::FromData(1, 1, {5.0f}, true);
  Sgd sgd({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    Tensor loss = Mul(w, w);
    sgd.ZeroGrad();
    loss.Backward();
    sgd.Step();
  }
  EXPECT_NEAR(w.data()[0], 0.0f, 1e-3f);
}

TEST(OptimizerTest, AdamWDescendsQuadratic) {
  Tensor w = Tensor::FromData(1, 2, {4.0f, -3.0f}, true);
  AdamW adam({w}, 0.2f);
  for (int i = 0; i < 200; ++i) {
    Tensor loss = Sum(Mul(w, w));
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(w.data()[0], 0.0f, 1e-2f);
  EXPECT_NEAR(w.data()[1], 0.0f, 1e-2f);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Tensor w = Tensor::FromData(1, 1, {2.0f}, true);
  AdamW adam({w}, 0.05f, /*weight_decay=*/0.5f);
  for (int i = 0; i < 50; ++i) {
    // Zero gradient: only decay acts.
    adam.ZeroGrad();
    adam.Step();
  }
  EXPECT_LT(std::abs(w.data()[0]), 2.0f);
}

TEST(OptimizerTest, ClipGradNormBoundsGlobalNorm) {
  Tensor a = Tensor::FromData(1, 2, {0, 0}, true);
  a.grad() = {3.0f, 4.0f};  // norm 5
  std::vector<Tensor> params = {a};
  const float before = ClipGradNorm(params, 1.0f);
  EXPECT_NEAR(before, 5.0f, 1e-5f);
  EXPECT_NEAR(a.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(a.grad()[1], 0.8f, 1e-5f);
}

}  // namespace
}  // namespace tailormatch::nn
