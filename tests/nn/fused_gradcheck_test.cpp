// Finite-difference gradient checks for the fused softmax / layernorm /
// bias-GELU backward kernels, run under the blocked backend (the reference
// backward paths are covered by tensor_test.cpp's gradcheck).

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "nn/kernels.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace tailormatch::nn {
namespace {

using kernels::Backend;
using kernels::KernelScope;

// Central-difference gradient check of a scalar-valued graph against the
// analytic backward pass.
void CheckGradients(const std::vector<Tensor>& inputs,
                    const std::function<Tensor()>& fn, float tolerance = 2e-2f,
                    float epsilon = 1e-3f) {
  Tensor loss = fn();
  ASSERT_EQ(loss.size(), 1u) << "gradcheck needs a scalar output";
  for (const Tensor& input : inputs) {
    const_cast<Tensor&>(input).ZeroGrad();
  }
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  for (const Tensor& input : inputs) analytic.push_back(input.grad());

  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor input = inputs[t];
    for (size_t i = 0; i < input.size(); ++i) {
      const float original = input.data()[i];
      input.data()[i] = original + epsilon;
      const float plus = fn().item();
      input.data()[i] = original - epsilon;
      const float minus = fn().item();
      input.data()[i] = original;
      const float numeric = (plus - minus) / (2.0f * epsilon);
      EXPECT_NEAR(analytic[t][i], numeric,
                  tolerance * std::max(1.0f, std::abs(numeric)))
          << "tensor " << t << " element " << i;
    }
  }
}

Tensor RandTensor(int rows, int cols, Rng& rng, float scale = 1.0f) {
  return Tensor::Randn(rows, cols, scale, rng, /*requires_grad=*/true);
}

TEST(FusedGradcheckTest, SoftmaxBackward) {
  KernelScope scope(Backend::kBlocked);
  Rng rng(31);
  Tensor x = RandTensor(5, 7, rng);
  Tensor w = Tensor::Randn(5, 7, 1.0f, rng, /*requires_grad=*/false);
  CheckGradients({x}, [&] { return Sum(Mul(Softmax(x), w)); });
}

TEST(FusedGradcheckTest, LayerNormBackward) {
  KernelScope scope(Backend::kBlocked);
  Rng rng(32);
  Tensor x = RandTensor(4, 9, rng);
  Tensor gain = RandTensor(1, 9, rng, 0.5f);
  Tensor bias = RandTensor(1, 9, rng, 0.5f);
  Tensor w = Tensor::Randn(4, 9, 1.0f, rng, /*requires_grad=*/false);
  CheckGradients({x, gain, bias},
                 [&] { return Sum(Mul(LayerNormOp(x, gain, bias), w)); });
}

TEST(FusedGradcheckTest, BiasGeluBackward) {
  KernelScope scope(Backend::kBlocked);
  Rng rng(33);
  Tensor x = RandTensor(6, 8, rng);
  Tensor bias = RandTensor(1, 8, rng, 0.5f);
  Tensor w = Tensor::Randn(6, 8, 1.0f, rng, /*requires_grad=*/false);
  CheckGradients({x, bias}, [&] { return Sum(Mul(BiasGelu(x, bias), w)); });
}

TEST(FusedGradcheckTest, BiasGeluOnlyBiasRequiresGrad) {
  KernelScope scope(Backend::kBlocked);
  Rng rng(34);
  Tensor x = Tensor::Randn(3, 5, 1.0f, rng, /*requires_grad=*/false);
  Tensor bias = RandTensor(1, 5, rng, 0.5f);
  Tensor w = Tensor::Randn(3, 5, 1.0f, rng, /*requires_grad=*/false);
  CheckGradients({bias}, [&] { return Sum(Mul(BiasGelu(x, bias), w)); });
}

TEST(FusedGradcheckTest, GemmBackwardUnderBlockedBackend) {
  KernelScope scope(Backend::kBlocked);
  Rng rng(35);
  // 33 rows straddles the 32-row parallel chunk; 40 cols straddles kNr=32.
  Tensor a = RandTensor(33, 6, rng, 0.3f);
  Tensor b = RandTensor(6, 40, rng, 0.3f);
  Tensor w = Tensor::Randn(33, 40, 1.0f, rng, /*requires_grad=*/false);
  CheckGradients({a, b}, [&] { return Sum(Mul(MatMul(a, b), w)); });
}

}  // namespace
}  // namespace tailormatch::nn
