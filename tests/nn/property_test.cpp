// Parameterized property tests for the neural substrate: gradient checks
// across shapes, LoRA invariants across ranks, and optimizer convergence
// across learning rates.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"

namespace tailormatch::nn {
namespace {

void CheckScalarGradients(const std::vector<Tensor>& inputs,
                          const std::function<Tensor()>& fn,
                          float tolerance = 3e-2f) {
  Tensor loss = fn();
  ASSERT_EQ(loss.size(), 1u);
  for (const Tensor& input : inputs) const_cast<Tensor&>(input).ZeroGrad();
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  for (const Tensor& input : inputs) analytic.push_back(input.grad());
  const float epsilon = 1e-3f;
  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor input = inputs[t];
    for (size_t i = 0; i < input.size(); ++i) {
      const float original = input.data()[i];
      input.data()[i] = original + epsilon;
      const float plus = fn().item();
      input.data()[i] = original - epsilon;
      const float minus = fn().item();
      input.data()[i] = original;
      const float numeric = (plus - minus) / (2.0f * epsilon);
      EXPECT_NEAR(analytic[t][i], numeric,
                  tolerance * std::max(1.0f, std::abs(numeric)));
    }
  }
}

// ---- Gradient checks across shapes ----

struct Shape {
  int rows;
  int cols;
};

class ShapeGradTest : public ::testing::TestWithParam<Shape> {};

TEST_P(ShapeGradTest, MatMulChain) {
  Rng rng(GetParam().rows * 100 + GetParam().cols);
  Tensor a = Tensor::Randn(GetParam().rows, GetParam().cols, 0.6f, rng, true);
  Tensor b = Tensor::Randn(GetParam().cols, 3, 0.6f, rng, true);
  CheckScalarGradients({a, b}, [&]() { return Sum(Gelu(MatMul(a, b))); });
}

TEST_P(ShapeGradTest, NormalizeThenProject) {
  Rng rng(GetParam().rows * 7 + GetParam().cols);
  Tensor x = Tensor::Randn(GetParam().rows, GetParam().cols, 1.0f, rng, true);
  Tensor gain = Tensor::Full(1, GetParam().cols, 1.0f, true);
  Tensor bias = Tensor::Zeros(1, GetParam().cols, true);
  CheckScalarGradients({x, gain, bias}, [&]() {
    Tensor normed = LayerNormOp(x, gain, bias);
    return Sum(Mul(normed, normed));
  });
}

TEST_P(ShapeGradTest, PoolingPath) {
  Rng rng(GetParam().rows * 13 + GetParam().cols);
  Tensor x = Tensor::Randn(GetParam().rows, GetParam().cols, 0.8f, rng, true);
  CheckScalarGradients({x}, [&]() {
    Tensor pooled = ConcatCols({MeanRows(x), MaxRows(x)});
    return Sum(Mul(pooled, pooled));
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeGradTest,
                         ::testing::Values(Shape{1, 4}, Shape{3, 5},
                                           Shape{6, 2}, Shape{4, 8}),
                         [](const ::testing::TestParamInfo<Shape>& info) {
                           return std::to_string(info.param.rows) + "x" +
                                  std::to_string(info.param.cols);
                         });

// ---- LoRA invariants across ranks ----

class LoraRankTest : public ::testing::TestWithParam<int> {};

TEST_P(LoraRankTest, EnableIsNoOpAndMergeIsExact) {
  Rng rng(5 + GetParam());
  LoraLinear layer(6, 5, rng);
  Tensor x = Tensor::Randn(2, 6, 1.0f, rng, false);
  ForwardContext ctx;
  Tensor base = layer.Forward(x, ctx);

  LoraConfig config;
  config.rank = GetParam();
  config.dropout = 0.0f;
  layer.EnableLora(config, rng);
  Tensor enabled = layer.Forward(x, ctx);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(base.data()[i], enabled.data()[i], 1e-5f);
  }

  for (Tensor& p : layer.Parameters()) {
    for (float& v : p.data()) v += 0.07f;
  }
  Tensor adapted = layer.Forward(x, ctx);
  layer.MergeLora();
  Tensor merged = layer.Forward(x, ctx);
  for (size_t i = 0; i < adapted.size(); ++i) {
    EXPECT_NEAR(adapted.data()[i], merged.data()[i], 1e-4f);
  }
}

TEST_P(LoraRankTest, TrainableParameterCountScalesWithRank) {
  Rng rng(11);
  LoraLinear layer(16, 16, rng);
  LoraConfig config;
  config.rank = GetParam();
  layer.EnableLora(config, rng);
  size_t total = 0;
  for (const Tensor& p : layer.Parameters()) total += p.size();
  EXPECT_EQ(total, static_cast<size_t>(2 * 16 * GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Ranks, LoraRankTest, ::testing::Values(1, 2, 4, 8));

// ---- Optimizer convergence across learning rates ----

class AdamLrTest : public ::testing::TestWithParam<float> {};

TEST_P(AdamLrTest, ConvergesOnQuadraticBowl) {
  Rng rng(3);
  Tensor w = Tensor::Randn(1, 4, 2.0f, rng, true);
  AdamW adam({w}, GetParam());
  for (int step = 0; step < 1500; ++step) {
    Tensor loss = Sum(Mul(w, w));
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  for (float v : w.data()) EXPECT_NEAR(v, 0.0f, 0.05f);
}

INSTANTIATE_TEST_SUITE_P(LearningRates, AdamLrTest,
                         ::testing::Values(0.01f, 0.05f, 0.2f));

}  // namespace
}  // namespace tailormatch::nn
