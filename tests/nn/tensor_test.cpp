#include "nn/tensor.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

namespace tailormatch::nn {
namespace {

// Numerical gradient check: compares autograd gradients of a scalar-valued
// function against central finite differences.
void CheckGradients(const std::vector<Tensor>& inputs,
                    const std::function<Tensor()>& fn, float tolerance = 2e-2f,
                    float epsilon = 1e-3f) {
  Tensor loss = fn();
  ASSERT_EQ(loss.size(), 1u) << "gradcheck needs a scalar output";
  for (const Tensor& input : inputs) {
    const_cast<Tensor&>(input).ZeroGrad();
  }
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  for (const Tensor& input : inputs) analytic.push_back(input.grad());

  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor input = inputs[t];
    for (size_t i = 0; i < input.size(); ++i) {
      const float original = input.data()[i];
      input.data()[i] = original + epsilon;
      const float plus = fn().item();
      input.data()[i] = original - epsilon;
      const float minus = fn().item();
      input.data()[i] = original;
      const float numeric = (plus - minus) / (2.0f * epsilon);
      EXPECT_NEAR(analytic[t][i], numeric,
                  tolerance * std::max(1.0f, std::abs(numeric)))
          << "tensor " << t << " element " << i;
    }
  }
}

Tensor RandTensor(int rows, int cols, Rng& rng, float scale = 1.0f) {
  return Tensor::Randn(rows, cols, scale, rng, /*requires_grad=*/true);
}

TEST(TensorTest, ConstructionAndAccessors) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FALSE(t.requires_grad());
  t.set(1, 2, 5.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
}

TEST(TensorTest, FromDataRoundTrips) {
  Tensor t = Tensor::FromData(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full(2, 2, 3.5f);
  for (float v : t.data()) EXPECT_FLOAT_EQ(v, 3.5f);
}

TEST(TensorTest, DetachSharesValuesNotGraph) {
  Rng rng(1);
  Tensor a = RandTensor(2, 2, rng);
  Tensor d = a.Detach();
  EXPECT_EQ(d.data(), a.data());
  EXPECT_FALSE(d.requires_grad());
}

TEST(TensorTest, MatMulValues) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::FromData(2, 2, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(TensorTest, MatMulGradients) {
  Rng rng(7);
  Tensor a = RandTensor(3, 4, rng);
  Tensor b = RandTensor(4, 2, rng);
  CheckGradients({a, b}, [&]() { return Sum(MatMul(a, b)); });
}

TEST(TensorTest, AddGradients) {
  Rng rng(8);
  Tensor a = RandTensor(2, 3, rng);
  Tensor b = RandTensor(2, 3, rng);
  CheckGradients({a, b}, [&]() { return Sum(Mul(Add(a, b), Add(a, b))); });
}

TEST(TensorTest, AddRowBroadcastGradients) {
  Rng rng(9);
  Tensor a = RandTensor(3, 4, rng);
  Tensor row = RandTensor(1, 4, rng);
  CheckGradients({a, row}, [&]() {
    Tensor out = AddRowBroadcast(a, row);
    return Sum(Mul(out, out));
  });
}

TEST(TensorTest, MulGradients) {
  Rng rng(10);
  Tensor a = RandTensor(2, 2, rng);
  Tensor b = RandTensor(2, 2, rng);
  CheckGradients({a, b}, [&]() { return Sum(Mul(a, b)); });
}

TEST(TensorTest, SubMatchesManual) {
  Tensor a = Tensor::FromData(1, 2, {5, 7});
  Tensor b = Tensor::FromData(1, 2, {2, 3});
  Tensor c = Sub(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 4.0f);
}

TEST(TensorTest, ScaleGradients) {
  Rng rng(11);
  Tensor a = RandTensor(2, 3, rng);
  CheckGradients({a}, [&]() { return Sum(Scale(a, -2.5f)); });
}

TEST(TensorTest, ReluForwardAndGradient) {
  Tensor a = Tensor::FromData(1, 4, {-1.0f, 0.5f, 2.0f, -3.0f}, true);
  Tensor out = Relu(a);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 0.5f);
  CheckGradients({a}, [&]() { return Sum(Mul(Relu(a), Relu(a))); });
}

TEST(TensorTest, GeluGradients) {
  Rng rng(12);
  Tensor a = RandTensor(2, 3, rng);
  CheckGradients({a}, [&]() { return Sum(Gelu(a)); });
}

TEST(TensorTest, TanhGradients) {
  Rng rng(13);
  Tensor a = RandTensor(2, 3, rng, 0.5f);
  CheckGradients({a}, [&]() { return Sum(Mul(Tanh(a), Tanh(a))); });
}

TEST(TensorTest, SoftmaxRowsSumToOne) {
  Rng rng(14);
  Tensor a = RandTensor(3, 5, rng, 2.0f);
  Tensor s = Softmax(a);
  for (int i = 0; i < 3; ++i) {
    float total = 0.0f;
    for (int j = 0; j < 5; ++j) total += s.at(i, j);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(TensorTest, SoftmaxGradients) {
  Rng rng(15);
  Tensor a = RandTensor(2, 4, rng);
  Tensor weights = RandTensor(2, 4, rng);
  weights.set_requires_grad(false);
  CheckGradients({a}, [&]() { return Sum(Mul(Softmax(a), weights)); });
}

TEST(TensorTest, LayerNormNormalizesRows) {
  Rng rng(16);
  Tensor a = RandTensor(2, 8, rng, 3.0f);
  Tensor gain = Tensor::Full(1, 8, 1.0f);
  Tensor bias = Tensor::Zeros(1, 8);
  Tensor out = LayerNormOp(a, gain, bias);
  for (int i = 0; i < 2; ++i) {
    float mean = 0.0f;
    for (int j = 0; j < 8; ++j) mean += out.at(i, j);
    mean /= 8.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
  }
}

TEST(TensorTest, LayerNormGradients) {
  Rng rng(17);
  Tensor a = RandTensor(2, 6, rng);
  Tensor gain = RandTensor(1, 6, rng, 0.5f);
  Tensor bias = RandTensor(1, 6, rng, 0.5f);
  CheckGradients({a, gain, bias}, [&]() {
    Tensor out = LayerNormOp(a, gain, bias);
    return Sum(Mul(out, out));
  });
}

TEST(TensorTest, TransposeGradients) {
  Rng rng(18);
  Tensor a = RandTensor(2, 3, rng);
  CheckGradients({a}, [&]() {
    Tensor t = Transpose(a);
    return Sum(Mul(t, t));
  });
}

TEST(TensorTest, SliceColsValuesAndGradients) {
  Rng rng(19);
  Tensor a = RandTensor(2, 6, rng);
  Tensor sliced = SliceCols(a, 2, 4);
  EXPECT_EQ(sliced.cols(), 2);
  EXPECT_FLOAT_EQ(sliced.at(1, 0), a.at(1, 2));
  CheckGradients({a}, [&]() {
    Tensor s = SliceCols(a, 2, 4);
    return Sum(Mul(s, s));
  });
}

TEST(TensorTest, SliceRowsValuesAndGradients) {
  Rng rng(20);
  Tensor a = RandTensor(4, 3, rng);
  Tensor sliced = SliceRows(a, 1, 3);
  EXPECT_EQ(sliced.rows(), 2);
  EXPECT_FLOAT_EQ(sliced.at(0, 1), a.at(1, 1));
  CheckGradients({a}, [&]() {
    Tensor s = SliceRows(a, 0, 2);
    return Sum(Mul(s, s));
  });
}

TEST(TensorTest, ConcatColsValuesAndGradients) {
  Rng rng(21);
  Tensor a = RandTensor(2, 2, rng);
  Tensor b = RandTensor(2, 3, rng);
  Tensor c = ConcatCols({a, b});
  EXPECT_EQ(c.cols(), 5);
  EXPECT_FLOAT_EQ(c.at(1, 4), b.at(1, 2));
  CheckGradients({a, b}, [&]() {
    Tensor cc = ConcatCols({a, b});
    return Sum(Mul(cc, cc));
  });
}

TEST(TensorTest, MeanRowsGradients) {
  Rng rng(22);
  Tensor a = RandTensor(4, 3, rng);
  CheckGradients({a}, [&]() {
    Tensor m = MeanRows(a);
    return Sum(Mul(m, m));
  });
}

TEST(TensorTest, EmbeddingLookupSelectsRows) {
  Rng rng(23);
  Tensor table = RandTensor(5, 4, rng);
  Tensor out = EmbeddingLookup(table, {2, 0, 2});
  EXPECT_EQ(out.rows(), 3);
  EXPECT_FLOAT_EQ(out.at(0, 1), table.at(2, 1));
  EXPECT_FLOAT_EQ(out.at(1, 3), table.at(0, 3));
}

TEST(TensorTest, EmbeddingLookupAccumulatesRepeatedIdGradients) {
  Rng rng(24);
  Tensor table = RandTensor(4, 2, rng);
  CheckGradients({table}, [&]() {
    Tensor out = EmbeddingLookup(table, {1, 1, 3});
    return Sum(Mul(out, out));
  });
}

TEST(TensorTest, DropoutEvalIsIdentity) {
  Rng rng(25);
  Tensor a = RandTensor(2, 4, rng);
  Tensor out = DropoutOp(a, 0.5f, /*training=*/false, rng);
  EXPECT_EQ(out.data(), a.data());
}

TEST(TensorTest, DropoutTrainScalesKeptUnits) {
  Rng rng(26);
  Tensor a = Tensor::Full(1, 1000, 1.0f);
  Tensor out = DropoutOp(a, 0.25f, /*training=*/true, rng);
  int kept = 0;
  for (float v : out.data()) {
    if (v != 0.0f) {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5f);
      ++kept;
    }
  }
  EXPECT_NEAR(static_cast<double>(kept) / 1000.0, 0.75, 0.05);
}

TEST(TensorTest, SoftmaxCrossEntropyMatchesManual) {
  Tensor logits = Tensor::FromData(1, 2, {0.0f, 0.0f}, true);
  Tensor loss = SoftmaxCrossEntropy(logits, 1);
  EXPECT_NEAR(loss.item(), std::log(2.0f), 1e-5f);
}

TEST(TensorTest, SoftmaxCrossEntropyGradients) {
  Rng rng(27);
  Tensor logits = RandTensor(1, 4, rng);
  CheckGradients({logits}, [&]() { return SoftmaxCrossEntropy(logits, 2); });
}

TEST(TensorTest, SigmoidBceGradients) {
  Rng rng(28);
  Tensor logits = RandTensor(1, 5, rng);
  std::vector<float> targets = {1, 0, 1, 1, 0};
  CheckGradients({logits}, [&]() { return SigmoidBceLoss(logits, targets); });
}

TEST(TensorTest, WeightedMseRespectsMask) {
  Tensor pred = Tensor::FromData(1, 3, {1.0f, 5.0f, 2.0f}, true);
  std::vector<float> targets = {0.0f, 0.0f, 1.0f};
  std::vector<float> weights = {1.0f, 1.0f, 2.0f};
  std::vector<float> mask = {1.0f, 0.0f, 1.0f};  // middle slot ignored
  Tensor loss = WeightedMseLoss(pred, targets, weights, mask);
  EXPECT_NEAR(loss.item(), (1.0f * 1.0f + 2.0f * 1.0f) / 2.0f, 1e-5f);
}

TEST(TensorTest, WeightedMseGradients) {
  Rng rng(29);
  Tensor pred = RandTensor(1, 4, rng);
  std::vector<float> targets = {0.2f, 0.8f, 0.5f, 0.0f};
  std::vector<float> weights = {0.9f, 0.1f, 0.5f, 1.0f};
  std::vector<float> mask = {1.0f, 1.0f, 0.0f, 1.0f};
  CheckGradients(
      {pred}, [&]() { return WeightedMseLoss(pred, targets, weights, mask); });
}

TEST(TensorTest, BackwardAccumulatesThroughSharedSubgraph) {
  // y = a*a used twice: gradients must accumulate, not overwrite.
  Tensor a = Tensor::FromData(1, 1, {3.0f}, true);
  Tensor sq = Mul(a, a);
  Tensor total = Add(sq, sq);
  total.Backward();
  EXPECT_NEAR(a.grad()[0], 12.0f, 1e-4f);  // d(2a^2)/da = 4a
}

TEST(TensorTest, FrozenTensorGetsNoGradient) {
  Tensor a = Tensor::FromData(1, 2, {1, 2}, true);
  a.set_requires_grad(false);
  Tensor b = Tensor::FromData(1, 2, {3, 4}, true);
  Tensor loss = Sum(Mul(a, b));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], 1.0f);
}

TEST(TensorTest, AttentionShapedCompositeGradients) {
  // A miniature attention computation exercising several ops together.
  Rng rng(30);
  Tensor x = RandTensor(4, 6, rng, 0.5f);
  Tensor wq = RandTensor(6, 6, rng, 0.4f);
  Tensor wk = RandTensor(6, 6, rng, 0.4f);
  Tensor wv = RandTensor(6, 6, rng, 0.4f);
  CheckGradients({x, wq, wk, wv}, [&]() {
    Tensor q = MatMul(x, wq);
    Tensor k = MatMul(x, wk);
    Tensor v = MatMul(x, wv);
    Tensor scores = Scale(MatMul(q, Transpose(k)), 1.0f / 2.449f);
    Tensor out = MatMul(Softmax(scores), v);
    return Sum(Mul(out, out));
  }, /*tolerance=*/5e-2f);
}

}  // namespace
}  // namespace tailormatch::nn
