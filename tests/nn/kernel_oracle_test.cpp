// Differential "kernel oracle" tests: every optimized kernel must agree
// with the reference backend within a 1e-5 relative tolerance, over a
// randomized sweep of shapes that includes degenerate sizes (m/n/k = 1)
// and sizes straddling the register-tile and chunk boundaries. Also pins
// the thread-count invariance contract: for the blocked backend, results
// are bitwise identical for any thread count.

#include "nn/kernels.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nn/tensor.h"
#include "util/rng.h"

namespace tailormatch::nn {
namespace {

using kernels::Backend;
using kernels::KernelScope;

// Mixed absolute/relative tolerance: 1e-5 relative with a 1e-5 floor so
// near-zero elements don't demand impossible precision.
void ExpectClose(const std::vector<float>& ref, const std::vector<float>& opt,
                 const char* what) {
  ASSERT_EQ(ref.size(), opt.size()) << what;
  for (size_t i = 0; i < ref.size(); ++i) {
    const float tol = 1e-5f * (1.0f + std::abs(ref[i]));
    ASSERT_NEAR(ref[i], opt[i], tol) << what << " element " << i;
  }
}

std::vector<float> RandVec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

// Runs one MatMul forward + backward (which exercises GemmNN, GemmNT and
// GemmTN) and returns {out, dA, dB}.
struct GemmResult {
  std::vector<float> out, da, db;
};

GemmResult RunMatMul(int m, int k, int n, const std::vector<float>& av,
                     const std::vector<float>& bv,
                     const std::vector<float>& seed) {
  Tensor a = Tensor::FromData(m, k, av, /*requires_grad=*/true);
  Tensor b = Tensor::FromData(k, n, bv, /*requires_grad=*/true);
  Tensor out = MatMul(a, b);
  // Weight the output with a fixed random tensor so upstream gradients are
  // non-trivial before reducing to a scalar.
  Tensor w = Tensor::FromData(m, n, seed);
  Sum(Mul(out, w)).Backward();
  return {out.data(), a.grad(), b.grad()};
}

TEST(KernelOracleTest, GemmMatchesReferenceOverRandomShapes) {
  Rng rng(1234);
  // Deliberate shapes: degenerate dims, register-tile edges (kMr=4,
  // kNr=32), k-panel edge (kKc=256) and parallel-chunk edge (grain=32).
  const int special[][3] = {
      {1, 1, 1},   {1, 5, 1},   {7, 1, 9},    {1, 300, 1}, {4, 4, 32},
      {5, 3, 33},  {3, 31, 65}, {32, 32, 32}, {33, 17, 31}, {8, 257, 8},
      {65, 9, 40}, {2, 2, 95},  {31, 255, 33}, {12, 258, 64},
  };
  int cases = 0;
  for (const auto& s : special) {
    const int m = s[0], k = s[1], n = s[2];
    std::vector<float> av = RandVec(static_cast<size_t>(m) * k, rng);
    std::vector<float> bv = RandVec(static_cast<size_t>(k) * n, rng);
    std::vector<float> seed = RandVec(static_cast<size_t>(m) * n, rng);
    GemmResult ref, opt;
    {
      KernelScope scope(Backend::kReference);
      ref = RunMatMul(m, k, n, av, bv, seed);
    }
    {
      KernelScope scope(Backend::kBlocked);
      opt = RunMatMul(m, k, n, av, bv, seed);
    }
    ExpectClose(ref.out, opt.out, "gemm out");
    ExpectClose(ref.da, opt.da, "gemm dA");
    ExpectClose(ref.db, opt.db, "gemm dB");
    ++cases;
  }
  // Randomized sweep: biased toward small shapes with occasional larger
  // ones so the suite stays fast but covers all code paths.
  while (cases < 200) {
    const int m = 1 + static_cast<int>(rng.NextU64() % 48);
    const int k = 1 + static_cast<int>(rng.NextU64() % 72);
    const int n = 1 + static_cast<int>(rng.NextU64() % 48);
    std::vector<float> av = RandVec(static_cast<size_t>(m) * k, rng);
    std::vector<float> bv = RandVec(static_cast<size_t>(k) * n, rng);
    std::vector<float> seed = RandVec(static_cast<size_t>(m) * n, rng);
    GemmResult ref, opt;
    {
      KernelScope scope(Backend::kReference);
      ref = RunMatMul(m, k, n, av, bv, seed);
    }
    {
      KernelScope scope(Backend::kBlocked);
      opt = RunMatMul(m, k, n, av, bv, seed);
    }
    ExpectClose(ref.out, opt.out, "gemm out");
    ExpectClose(ref.da, opt.da, "gemm dA");
    ExpectClose(ref.db, opt.db, "gemm dB");
    ++cases;
  }
}

TEST(KernelOracleTest, GemmBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(99);
  // Big enough to cross the parallel-dispatch FLOP threshold, with a row
  // count that does not divide evenly into chunks.
  const int m = 130, k = 96, n = 120;
  std::vector<float> av = RandVec(static_cast<size_t>(m) * k, rng);
  std::vector<float> bv = RandVec(static_cast<size_t>(k) * n, rng);
  std::vector<float> seed = RandVec(static_cast<size_t>(m) * n, rng);
  GemmResult base;
  {
    KernelScope scope(Backend::kBlocked, 1);
    base = RunMatMul(m, k, n, av, bv, seed);
  }
  for (int threads : {2, 8}) {
    KernelScope scope(Backend::kBlocked, threads);
    GemmResult got = RunMatMul(m, k, n, av, bv, seed);
    EXPECT_EQ(base.out, got.out) << "threads=" << threads;
    EXPECT_EQ(base.da, got.da) << "threads=" << threads;
    EXPECT_EQ(base.db, got.db) << "threads=" << threads;
  }
}

// Runs forward + backward of a row-wise op under the given backend.
struct RowOpResult {
  std::vector<float> out, dx, dgain, dbias;
};

TEST(KernelOracleTest, SoftmaxMatchesReference) {
  Rng rng(7);
  for (int c = 0; c < 60; ++c) {
    const int rows = 1 + static_cast<int>(rng.NextU64() % 150);
    const int n = 1 + static_cast<int>(rng.NextU64() % 40);
    std::vector<float> xv = RandVec(static_cast<size_t>(rows) * n, rng);
    std::vector<float> seed = RandVec(static_cast<size_t>(rows) * n, rng);
    RowOpResult ref, opt;
    auto run = [&](Backend b) {
      KernelScope scope(b);
      Tensor x = Tensor::FromData(rows, n, xv, /*requires_grad=*/true);
      Tensor out = Softmax(x);
      Sum(Mul(out, Tensor::FromData(rows, n, seed))).Backward();
      return RowOpResult{out.data(), x.grad(), {}, {}};
    };
    ref = run(Backend::kReference);
    opt = run(Backend::kBlocked);
    ExpectClose(ref.out, opt.out, "softmax out");
    ExpectClose(ref.dx, opt.dx, "softmax dx");
  }
}

TEST(KernelOracleTest, LayerNormMatchesReference) {
  Rng rng(8);
  for (int c = 0; c < 60; ++c) {
    const int rows = 1 + static_cast<int>(rng.NextU64() % 150);
    const int n = 1 + static_cast<int>(rng.NextU64() % 40);
    std::vector<float> xv = RandVec(static_cast<size_t>(rows) * n, rng);
    std::vector<float> gv = RandVec(n, rng);
    std::vector<float> bv = RandVec(n, rng);
    std::vector<float> seed = RandVec(static_cast<size_t>(rows) * n, rng);
    auto run = [&](Backend b) {
      KernelScope scope(b);
      Tensor x = Tensor::FromData(rows, n, xv, /*requires_grad=*/true);
      Tensor gain = Tensor::FromData(1, n, gv, /*requires_grad=*/true);
      Tensor bias = Tensor::FromData(1, n, bv, /*requires_grad=*/true);
      Tensor out = LayerNormOp(x, gain, bias);
      Sum(Mul(out, Tensor::FromData(rows, n, seed))).Backward();
      return RowOpResult{out.data(), x.grad(), gain.grad(), bias.grad()};
    };
    RowOpResult ref = run(Backend::kReference);
    RowOpResult opt = run(Backend::kBlocked);
    ExpectClose(ref.out, opt.out, "layernorm out");
    ExpectClose(ref.dx, opt.dx, "layernorm dx");
    ExpectClose(ref.dgain, opt.dgain, "layernorm dgain");
    ExpectClose(ref.dbias, opt.dbias, "layernorm dbias");
  }
}

TEST(KernelOracleTest, BiasGeluMatchesUnfusedOps) {
  Rng rng(9);
  for (int c = 0; c < 60; ++c) {
    const int rows = 1 + static_cast<int>(rng.NextU64() % 150);
    const int n = 1 + static_cast<int>(rng.NextU64() % 40);
    std::vector<float> xv = RandVec(static_cast<size_t>(rows) * n, rng);
    std::vector<float> bv = RandVec(n, rng);
    std::vector<float> seed = RandVec(static_cast<size_t>(rows) * n, rng);
    // Oracle: the pre-existing two-op composition under the reference
    // backend.
    RowOpResult ref;
    {
      KernelScope scope(Backend::kReference);
      Tensor x = Tensor::FromData(rows, n, xv, /*requires_grad=*/true);
      Tensor bias = Tensor::FromData(1, n, bv, /*requires_grad=*/true);
      Tensor out = Gelu(AddRowBroadcast(x, bias));
      Sum(Mul(out, Tensor::FromData(rows, n, seed))).Backward();
      ref = {out.data(), x.grad(), {}, bias.grad()};
    }
    RowOpResult opt;
    {
      KernelScope scope(Backend::kBlocked);
      Tensor x = Tensor::FromData(rows, n, xv, /*requires_grad=*/true);
      Tensor bias = Tensor::FromData(1, n, bv, /*requires_grad=*/true);
      Tensor out = BiasGelu(x, bias);
      Sum(Mul(out, Tensor::FromData(rows, n, seed))).Backward();
      opt = {out.data(), x.grad(), {}, bias.grad()};
    }
    ExpectClose(ref.out, opt.out, "biasgelu out");
    ExpectClose(ref.dx, opt.dx, "biasgelu dx");
    ExpectClose(ref.dbias, opt.dbias, "biasgelu dbias");
  }
}

TEST(KernelOracleTest, RowKernelsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(10);
  const int rows = 300, n = 24;  // crosses the row-parallel threshold
  std::vector<float> xv = RandVec(static_cast<size_t>(rows) * n, rng);
  std::vector<float> gv = RandVec(n, rng);
  std::vector<float> bv = RandVec(n, rng);
  auto run = [&](int threads) {
    KernelScope scope(Backend::kBlocked, threads);
    std::vector<float> softmax_out(xv.size());
    kernels::SoftmaxRows(rows, n, xv.data(), softmax_out.data());
    std::vector<float> ln_out(xv.size());
    std::vector<float> stats(static_cast<size_t>(rows) * 2);
    kernels::LayerNormRows(rows, n, xv.data(), gv.data(), bv.data(), 1e-5f,
                           ln_out.data(), stats.data());
    std::vector<float> gelu_out(xv.size());
    kernels::BiasGeluRows(rows, n, xv.data(), bv.data(), gelu_out.data());
    softmax_out.insert(softmax_out.end(), ln_out.begin(), ln_out.end());
    softmax_out.insert(softmax_out.end(), gelu_out.begin(), gelu_out.end());
    return softmax_out;
  };
  const std::vector<float> base = run(1);
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(8));
}

}  // namespace
}  // namespace tailormatch::nn
