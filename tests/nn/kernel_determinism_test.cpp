// Guards the ordered-reduction contract end to end: with a fixed seed, the
// Trainer's loss curve and SimLlm's logits must be identical for any
// kernel thread count. The model here is sized so its GEMMs cross the
// parallel-dispatch threshold — the thread pool really runs.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "llm/sim_llm.h"
#include "llm/trainer.h"
#include "nn/kernels.h"

namespace tailormatch::llm {
namespace {

using nn::kernels::Backend;
using nn::kernels::KernelScope;

std::vector<std::pair<std::string, bool>> KeywordTask() {
  std::vector<std::pair<std::string, bool>> data;
  const char* positives[] = {
      "entity 1: alpha same widget machine entity 2: beta same widget",
      "same entity 1: xylophone gadget entity 2: yonder gadget same",
      "entity 1: gamma products entity 2: same delta products machine"};
  const char* negatives[] = {
      "entity 1: alpha widget machine entity 2: beta widget",
      "entity 1: xylophone gadget entity 2: yonder gadget other",
      "entity 1: gamma products entity 2: delta products machine"};
  for (int repeat = 0; repeat < 6; ++repeat) {
    for (const char* text : positives) data.emplace_back(text, true);
    for (const char* text : negatives) data.emplace_back(text, false);
  }
  return data;
}

SimLlm MakeModel() {
  std::vector<std::string> corpus;
  for (auto& [text, label] : KeywordTask()) corpus.push_back(text);
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1200, 1);
  ModelConfig config;
  // dim 64 puts the feed-forward GEMMs (seq x 64 x 256) past the parallel
  // FLOP threshold, so multi-thread runs genuinely fan out.
  config.dim = 64;
  config.num_heads = 2;
  config.num_layers = 1;
  config.max_seq = 96;
  config.init_seed = 11;
  return SimLlm(config, std::move(tokenizer));
}

std::string LongPrompt() {
  std::string prompt = "entity 1:";
  for (int i = 0; i < 40; ++i) prompt += " same widget";
  prompt += " entity 2:";
  for (int i = 0; i < 40; ++i) prompt += " same widget";
  return prompt;
}

TEST(KernelDeterminismTest, LogitsIdenticalAcrossThreadCounts) {
  SimLlm model = MakeModel();
  const std::string prompt = LongPrompt();
  double base = 0.0;
  {
    KernelScope scope(Backend::kBlocked, 1);
    base = model.PredictMatchProbability(prompt);
  }
  for (int threads : {2, 8}) {
    KernelScope scope(Backend::kBlocked, threads);
    EXPECT_EQ(base, model.PredictMatchProbability(prompt))
        << "threads=" << threads;
  }
}

TEST(KernelDeterminismTest, TrainerLossCurveIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    KernelScope scope(Backend::kBlocked, threads);
    SimLlm model = MakeModel();
    std::vector<TrainExample> examples;
    for (auto& [text, label] : KeywordTask()) {
      examples.push_back(model.EncodeExample(text, label));
    }
    TrainOptions options;
    options.epochs = 2;
    options.batch_size = 4;
    options.seed = 21;
    TrainStats stats = TrainModel(model, examples, options);
    // Append a post-training logit so the final weights are covered too.
    stats.epoch_train_loss.push_back(
        model.PredictMatchProbability("entity 1: same alpha entity 2: same"));
    return stats.epoch_train_loss;
  };
  const std::vector<double> base = run(1);
  ASSERT_EQ(base.size(), 3u);
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(8));
}

}  // namespace
}  // namespace tailormatch::llm
