#include "llm/icl.h"

#include <gtest/gtest.h>

#include "data/benchmark_factory.h"

namespace tailormatch::llm {
namespace {

SimLlm TinyModel() {
  std::vector<std::string> corpus = {
      "do the two entity descriptions refer to the same real-world product",
      "entity 1: alpha beta 12 entity 2: gamma delta 34",
  };
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1500, 1);
  ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  return SimLlm(config, std::move(tokenizer));
}

data::Dataset Pool() {
  return data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.05).train;
}

TEST(InContextMatcherTest, SelectsRequestedNumberOfDemos) {
  SimLlm model = TinyModel();
  data::Dataset pool = Pool();
  InContextMatcher::Config config;
  config.num_demonstrations = 4;
  InContextMatcher matcher(&model, pool.pairs, config);
  auto demos = matcher.SelectDemonstrations(pool.pairs.front());
  EXPECT_EQ(demos.size(), 4u);
}

TEST(InContextMatcherTest, NearestDemoIsTheQueryItselfWhenPresent) {
  SimLlm model = TinyModel();
  data::Dataset pool = Pool();
  InContextMatcher matcher(&model, pool.pairs);
  const data::EntityPair& query = pool.pairs[3];
  auto demos = matcher.SelectDemonstrations(query);
  ASSERT_FALSE(demos.empty());
  EXPECT_EQ(demos[0]->left.surface, query.left.surface);
}

TEST(InContextMatcherTest, ProbabilityBounded) {
  SimLlm model = TinyModel();
  data::Dataset pool = Pool();
  InContextMatcher matcher(&model, pool.pairs);
  for (int i = 0; i < 10; ++i) {
    const double p =
        matcher.PredictMatchProbability(pool.pairs[static_cast<size_t>(i)]);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(InContextMatcherTest, DemoWeightZeroEqualsZeroShot) {
  SimLlm model = TinyModel();
  data::Dataset pool = Pool();
  InContextMatcher::Config config;
  config.demo_weight = 0.0;
  InContextMatcher matcher(&model, pool.pairs, config);
  const data::EntityPair& query = pool.pairs[1];
  const double zero_shot = model.PredictMatchProbability(
      prompt::RenderPrompt(prompt::PromptTemplate::kDefault, query));
  EXPECT_NEAR(matcher.PredictMatchProbability(query), zero_shot, 1e-9);
}

TEST(InContextMatcherTest, DemosImproveOverZeroShotForUntrainedModel) {
  // An untrained model is near-random; demonstration voting lifts
  // accuracy (the paper's in-context-learning baseline behaviour).
  SimLlm model = TinyModel();
  data::Benchmark benchmark =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, 0.08);
  InContextMatcher::Config config;
  config.demo_weight = 1.0;  // pure demonstration voting
  config.num_demonstrations = 8;
  InContextMatcher matcher(&model, benchmark.train.pairs, config);
  int icl_correct = 0, zero_correct = 0, n = 0;
  for (const data::EntityPair& pair : benchmark.test.pairs) {
    if (++n > 150) break;
    const bool icl = matcher.PredictMatchProbability(pair) > 0.5;
    const bool zero =
        model.PredictMatchProbability(prompt::RenderPrompt(
            prompt::PromptTemplate::kDefault, pair)) > 0.5;
    icl_correct += icl == pair.label ? 1 : 0;
    zero_correct += zero == pair.label ? 1 : 0;
  }
  EXPECT_GT(icl_correct, zero_correct);
}

TEST(InContextMatcherTest, RespondParsesAsYesNo) {
  SimLlm model = TinyModel();
  data::Dataset pool = Pool();
  InContextMatcher matcher(&model, pool.pairs);
  bool label = false;
  EXPECT_TRUE(prompt::ParseYesNo(matcher.Respond(pool.pairs[0]), &label));
}

TEST(InContextMatcherDeathTest, EmptyPoolRejected) {
  SimLlm model = TinyModel();
  EXPECT_DEATH(InContextMatcher(&model, {}), "non-empty demonstration pool");
}

}  // namespace
}  // namespace tailormatch::llm
