#include "llm/model_config.h"

#include <set>

#include <gtest/gtest.h>

namespace tailormatch::llm {
namespace {

TEST(ModelConfigTest, FamilyNamesDistinct) {
  std::set<std::string> names, table_names;
  for (ModelFamily family : AllModelFamilies()) {
    names.insert(ModelFamilyName(family));
    table_names.insert(ModelFamilyTableName(family));
  }
  EXPECT_EQ(names.size(), 4u);
  EXPECT_EQ(table_names.size(), 4u);
}

TEST(ModelConfigTest, CapacityOrdering) {
  // Zero-shot strength is driven by capacity x pretraining budget; the
  // intended ordering is llama8b < llama70b <= gpt4o-mini < gpt4o in
  // pretraining exposure and llama8b smallest in width.
  const FamilyProfile llama8b = GetFamilyProfile(ModelFamily::kLlama8B);
  const FamilyProfile llama70b = GetFamilyProfile(ModelFamily::kLlama70B);
  const FamilyProfile mini = GetFamilyProfile(ModelFamily::kGpt4oMini);
  const FamilyProfile gpt4o = GetFamilyProfile(ModelFamily::kGpt4o);
  EXPECT_LT(llama8b.config.dim, llama70b.config.dim);
  EXPECT_LT(llama8b.pretrain_pairs, llama70b.pretrain_pairs);
  EXPECT_LT(llama70b.pretrain_pairs, mini.pretrain_pairs);
  EXPECT_LE(mini.pretrain_pairs, gpt4o.pretrain_pairs);
  EXPECT_LE(llama70b.config.dim, gpt4o.config.dim);
}

TEST(ModelConfigTest, PaperFineTuningDefaults) {
  for (ModelFamily family : AllModelFamilies()) {
    const FamilyProfile profile = GetFamilyProfile(family);
    EXPECT_EQ(profile.finetune_epochs, 10);  // Section 2: 10 epochs
    EXPECT_EQ(profile.batch_size, 16);       // Section 2: batch size 16
    EXPECT_FLOAT_EQ(profile.lora_alpha, 16.0f);
    EXPECT_FLOAT_EQ(profile.lora_dropout, 0.1f);
    EXPECT_GT(profile.lora_rank, 0);
  }
}

TEST(ModelConfigTest, ArchitectureConsistent) {
  for (ModelFamily family : AllModelFamilies()) {
    const ModelConfig& config = GetFamilyProfile(family).config;
    EXPECT_EQ(config.dim % config.num_heads, 0)
        << ModelFamilyName(family);
    EXPECT_GE(config.max_seq, 48);
    EXPECT_GT(config.max_vocab, 1000);
    EXPECT_EQ(config.family, ModelFamilyName(family));
  }
}

TEST(ModelConfigTest, InitSeedsDiffer) {
  std::set<uint64_t> seeds;
  for (ModelFamily family : AllModelFamilies()) {
    seeds.insert(GetFamilyProfile(family).config.init_seed);
  }
  EXPECT_EQ(seeds.size(), 4u);
}

}  // namespace
}  // namespace tailormatch::llm
