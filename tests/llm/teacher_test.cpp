#include "llm/teacher.h"

#include <gtest/gtest.h>

#include "data/benchmark_factory.h"

namespace tailormatch::llm {
namespace {

data::EntityPair MakePair(const std::string& left, const std::string& right,
                          data::Domain domain = data::Domain::kProduct) {
  data::EntityPair pair;
  pair.left.surface = left;
  pair.left.domain = domain;
  pair.right.surface = right;
  pair.right.domain = domain;
  return pair;
}

TEST(TeacherTest, IdenticalSurfacesScoreHigh) {
  TeacherLlm teacher;
  EXPECT_GT(teacher.MatchScore(MakePair("jabra evolve kx-80 headset",
                                        "jabra evolve kx-80 headset")),
            0.9);
}

TEST(TeacherTest, DisjointSurfacesScoreLow) {
  TeacherLlm teacher;
  EXPECT_LT(teacher.MatchScore(MakePair("jabra evolve kx-80 headset",
                                        "weavely cotton xl hoodie")),
            0.4);
}

TEST(TeacherTest, ModelNumberMismatchVetoes) {
  TeacherLlm teacher;
  // The PG-730 vs PG-1130 example from the paper's Figure 2: nearly
  // identical surfaces, different model revision.
  const double sibling = teacher.MatchScore(
      MakePair("sram vertex pg-730 cassette 7sp 12-32t",
               "sram vertex pg-1130 cassette 7sp 12-32t"));
  const double same = teacher.MatchScore(
      MakePair("sram vertex pg-730 cassette 7sp 12-32t",
               "sram vertex pg 730 cassette"));
  EXPECT_LT(sibling, teacher.config().threshold);
  EXPECT_GT(same, teacher.config().threshold);
}

TEST(TeacherTest, DroppedAttributesDoNotVeto) {
  TeacherLlm teacher;
  // The sparse rendering omits spec/SKU: still the same product.
  EXPECT_TRUE(teacher.PredictMatch(
      MakePair("storix raptor ud-41 hdd 2000 gb (3386-443-830)",
               "storix raptor ud 41")));
}

TEST(TeacherTest, SpecMismatchVetoesWhenVisible) {
  TeacherLlm teacher;
  EXPECT_FALSE(teacher.PredictMatch(
      MakePair("storix raptor ud-41 hdd 2000 gb",
               "storix raptor ud-41 hdd 500 gb")));
}

TEST(TeacherTest, TyposAreTolerated) {
  TeacherLlm teacher;
  EXPECT_TRUE(teacher.PredictMatch(
      MakePair("velodyne zwx-867 chainring 8sp",
               "veloodyne zwx-867 chainrng 8sp")));
}

TEST(TeacherTest, ScholarYearOffsetTolerated) {
  TeacherLlm teacher;
  EXPECT_TRUE(teacher.PredictMatch(MakePair(
      "w zhang, e muller; scalable matching of distributed graphs; icdes; "
      "2004",
      "w zhang, e muller; scalable matching of distributed graphs; icdes; "
      "2005",
      data::Domain::kScholar)));
}

TEST(TeacherTest, DeterministicVerdicts) {
  TeacherLlm teacher;
  data::EntityPair pair = MakePair("sonara pulse zmw-304 printer",
                                   "sonara pulse zmw 304");
  EXPECT_EQ(teacher.PredictMatch(pair), teacher.PredictMatch(pair));
}

TEST(TeacherTest, AccuracyOnCleanBenchmark) {
  // The teacher stands in for GPT-4o: it must be clearly stronger than an
  // untrained student on every benchmark.
  TeacherLlm teacher;
  for (data::BenchmarkId id :
       {data::BenchmarkId::kWdcSmall, data::BenchmarkId::kDblpAcm}) {
    data::Benchmark benchmark = data::BuildBenchmark(id, 0.05);
    int correct = 0;
    for (const data::EntityPair& pair : benchmark.test.pairs) {
      correct += teacher.PredictMatch(pair) == pair.label ? 1 : 0;
    }
    const double accuracy =
        static_cast<double>(correct) / benchmark.test.size();
    EXPECT_GT(accuracy, 0.85) << data::BenchmarkName(id);
  }
}

TEST(TeacherTest, InterestingFiltersTrivialPairs) {
  TeacherLlm teacher;
  // Trivially different items are not interesting (Section 5.1: "comparing
  // a hard drive and a TV ... offers limited value").
  EXPECT_FALSE(teacher.IsInteresting(
      MakePair("datavault ssd 500 gb", "weavely hoodie xl cotton")));
  // Corner-case-like pairs are.
  EXPECT_TRUE(teacher.IsInteresting(
      MakePair("sram vertex pg-730 cassette", "sram vertex pg-1130 cassette")));
}

TEST(TeacherTest, NoiseFlipsOnlyBorderlineVerdicts) {
  TeacherLlm::Config noisy_config;
  noisy_config.noise_rate = 1.0;  // always flip inside the band
  TeacherLlm noisy(noisy_config);
  TeacherLlm::Config clean_config;
  clean_config.noise_rate = 0.0;
  TeacherLlm clean(clean_config);
  // A decisive pair (score far from threshold) is unaffected by noise.
  data::EntityPair decisive =
      MakePair("jabra evolve kx-80 headset", "jabra evolve kx-80 headset");
  EXPECT_EQ(noisy.PredictMatch(decisive), clean.PredictMatch(decisive));
}

}  // namespace
}  // namespace tailormatch::llm
