// Boundary behavior of the LR schedule and gradient clipping — the two
// pieces of per-step arithmetic the deterministic-training contract depends
// on (every worker count must see the same LR and the same clip decision).

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "llm/trainer.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"

namespace tailormatch::llm {
namespace {

TrainOptions OptionsWith(LrSchedule schedule, float warmup_fraction = 0.0f) {
  TrainOptions options;
  options.learning_rate = 1.0f;  // makes expected values read directly
  options.lr_floor_fraction = 0.1f;
  options.schedule = schedule;
  options.warmup_fraction = warmup_fraction;
  return options;
}

TEST(ScheduledLrTest, StepZeroStartsAtPeakWithoutWarmup) {
  EXPECT_FLOAT_EQ(ScheduledLr(OptionsWith(LrSchedule::kConstant), 0, 100),
                  1.0f);
  EXPECT_FLOAT_EQ(ScheduledLr(OptionsWith(LrSchedule::kLinear), 0, 100), 1.0f);
  EXPECT_FLOAT_EQ(ScheduledLr(OptionsWith(LrSchedule::kCosine), 0, 100), 1.0f);
}

TEST(ScheduledLrTest, WarmupRampsLinearlyToThePeak) {
  const TrainOptions options = OptionsWith(LrSchedule::kLinear, 0.2f);
  // 20 warmup steps out of 100: step 0 is 1/20 of the peak, step 19 the peak.
  EXPECT_FLOAT_EQ(ScheduledLr(options, 0, 100), 1.0f / 20.0f);
  EXPECT_FLOAT_EQ(ScheduledLr(options, 9, 100), 10.0f / 20.0f);
  EXPECT_FLOAT_EQ(ScheduledLr(options, 19, 100), 1.0f);
}

TEST(ScheduledLrTest, WarmupToDecayTransitionIsContinuous) {
  for (LrSchedule schedule : {LrSchedule::kLinear, LrSchedule::kCosine}) {
    const TrainOptions options = OptionsWith(schedule, 0.2f);
    // The last warmup step reaches the peak; the first decay step starts
    // there (progress 0), so the handoff has no jump.
    const float last_warmup = ScheduledLr(options, 19, 100);
    const float first_decay = ScheduledLr(options, 20, 100);
    EXPECT_FLOAT_EQ(last_warmup, 1.0f);
    EXPECT_FLOAT_EQ(first_decay, 1.0f);
    // And the schedule decays monotonically after the handoff.
    EXPECT_LT(ScheduledLr(options, 21, 100), first_decay);
  }
}

TEST(ScheduledLrTest, FinalStepLandsOnTheFloor) {
  EXPECT_FLOAT_EQ(ScheduledLr(OptionsWith(LrSchedule::kLinear), 99, 100),
                  0.1f);
  // cos(pi) is -1 up to float rounding.
  EXPECT_NEAR(ScheduledLr(OptionsWith(LrSchedule::kCosine), 99, 100), 0.1f,
              1e-6f);
  EXPECT_FLOAT_EQ(ScheduledLr(OptionsWith(LrSchedule::kConstant), 99, 100),
                  1.0f);
}

TEST(ScheduledLrTest, SingleStepScheduleIsConstant) {
  for (LrSchedule schedule :
       {LrSchedule::kConstant, LrSchedule::kLinear, LrSchedule::kCosine}) {
    EXPECT_FLOAT_EQ(ScheduledLr(OptionsWith(schedule), 0, 1), 1.0f);
  }
}

class ClipGradNormTest : public ::testing::Test {
 protected:
  // One parameter with gradient (3, 4, 0): global L2 norm 5.
  std::vector<nn::Tensor> ParamsWithNormFive() {
    nn::Tensor p(1, 3, /*requires_grad=*/true);
    std::vector<float>& g = p.grad();
    g[0] = 3.0f;
    g[1] = 4.0f;
    g[2] = 0.0f;
    return {p};
  }
};

TEST_F(ClipGradNormTest, BelowThresholdLeavesGradientsUntouched) {
  std::vector<nn::Tensor> params = ParamsWithNormFive();
  const float norm = nn::ClipGradNorm(params, 10.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_FLOAT_EQ(params[0].grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(params[0].grad()[1], 4.0f);
}

TEST_F(ClipGradNormTest, ExactThresholdDoesNotClip) {
  std::vector<nn::Tensor> params = ParamsWithNormFive();
  const float norm = nn::ClipGradNorm(params, 5.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  // norm == max_norm is not an excess: the gradients stay bitwise intact.
  EXPECT_FLOAT_EQ(params[0].grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(params[0].grad()[1], 4.0f);
}

TEST_F(ClipGradNormTest, AboveThresholdRescalesToMaxNorm) {
  std::vector<nn::Tensor> params = ParamsWithNormFive();
  const float norm = nn::ClipGradNorm(params, 2.5f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_FLOAT_EQ(params[0].grad()[0], 1.5f);
  EXPECT_FLOAT_EQ(params[0].grad()[1], 2.0f);
  // Post-clip norm is the threshold.
  const float clipped = nn::ClipGradNorm(params, 2.5f);
  EXPECT_FLOAT_EQ(clipped, 2.5f);
}

TEST_F(ClipGradNormTest, NonFiniteGradientsAreReportedNotScaled) {
  std::vector<nn::Tensor> params = ParamsWithNormFive();
  params[0].grad()[2] = std::numeric_limits<float>::infinity();
  const float inf_norm = nn::ClipGradNorm(params, 5.0f);
  EXPECT_FALSE(std::isfinite(inf_norm));
  // The poisoned gradients are left for the caller's divergence handling —
  // scaling by max_norm/inf would have silently zeroed the evidence.
  EXPECT_FLOAT_EQ(params[0].grad()[0], 3.0f);
  EXPECT_TRUE(std::isinf(params[0].grad()[2]));

  std::vector<nn::Tensor> nan_params = ParamsWithNormFive();
  nan_params[0].grad()[1] = std::numeric_limits<float>::quiet_NaN();
  const float nan_norm = nn::ClipGradNorm(nan_params, 5.0f);
  EXPECT_FALSE(std::isfinite(nan_norm));
  EXPECT_FLOAT_EQ(nan_params[0].grad()[0], 3.0f);
}

}  // namespace
}  // namespace tailormatch::llm
