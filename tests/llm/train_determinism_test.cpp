// The data-parallel trainer's determinism contract: per-epoch losses and
// final weights (and checkpoint bytes) must be bitwise identical for worker
// counts {1, 2, 8}, and — with no stochastic regularization consuming the
// rng — identical to the pre-change serial trainer on the same seed.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../fault/tiny_model.h"
#include "llm/trainer.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"

namespace tailormatch::llm {
namespace {

TrainOptions BaseOptions() {
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 8;
  options.learning_rate = 5e-3f;
  options.seed = 3;
  return options;
}

struct RunResult {
  std::vector<double> losses;
  std::vector<std::vector<float>> state;
};

void ExpectBitwiseEqual(const RunResult& a, const RunResult& b,
                        const std::string& label) {
  ASSERT_EQ(a.losses.size(), b.losses.size()) << label;
  for (size_t e = 0; e < a.losses.size(); ++e) {
    EXPECT_EQ(a.losses[e], b.losses[e]) << label << " epoch " << e;
  }
  ASSERT_EQ(a.state.size(), b.state.size()) << label;
  for (size_t i = 0; i < a.state.size(); ++i) {
    EXPECT_EQ(a.state[i], b.state[i]) << label << " tensor " << i;
  }
}

// Full training (embeddings and backbone trainable, dropout active): every
// parameter, including the multi-contribution embedding tables, must land on
// the same bits for any worker count.
RunResult RunFull(int threads) {
  SimLlm model = fault_test::MakeTinyModel();
  const auto examples = fault_test::KeywordExamples(model);
  TrainOptions options = BaseOptions();
  options.num_threads = threads;
  TrainStats stats = TrainModel(model, examples, options);
  return {stats.epoch_train_loss, model.SnapshotState()};
}

// LoRA fine-tuning (the paper's setup), optionally with adapter dropout.
RunResult RunLora(int threads, float dropout, std::string* checkpoint_bytes) {
  SimLlm model = fault_test::MakeTinyModel();
  nn::LoraConfig lora;
  lora.rank = 4;
  lora.alpha = 8.0f;
  lora.dropout = dropout;
  model.EnableLora(lora);
  const auto examples = fault_test::KeywordExamples(model);
  TrainOptions options = BaseOptions();
  options.num_threads = threads;
  TrainStats stats = TrainModel(model, examples, options);
  RunResult result{stats.epoch_train_loss, model.SnapshotState()};
  if (checkpoint_bytes != nullptr) {
    model.MergeLora();
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("tm_train_det_" + std::to_string(getpid()) + "_t" +
          std::to_string(threads) + ".ckpt"))
            .string();
    EXPECT_TRUE(model.SaveCheckpoint(path).ok()) << path;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *checkpoint_bytes = buffer.str();
    std::filesystem::remove(path);
  }
  return result;
}

// The trainer exactly as it existed before the data-parallel change: one
// shared rng threaded through every forward, gradients accumulated directly
// into the parameter grad buffers, one clipped step per batch. Used as the
// reference for the "parallel changes nothing but the wall clock" claim.
std::vector<double> LegacySerialTrain(SimLlm& model,
                                      const std::vector<TrainExample>& examples,
                                      const TrainOptions& options) {
  std::vector<double> epoch_losses;
  Rng rng(options.seed);
  auto optimizer = std::make_unique<nn::AdamW>(
      model.TrainableParameters(), options.learning_rate,
      options.weight_decay);
  std::vector<size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);
  const int64_t steps_per_epoch =
      (static_cast<int64_t>(examples.size()) + options.batch_size - 1) /
      options.batch_size;
  const int64_t total_steps = steps_per_epoch * options.epochs;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    int64_t step = static_cast<int64_t>(epoch) * steps_per_epoch;
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    int in_batch = 0;
    optimizer->ZeroGrad();
    const auto take_step = [&] {
      nn::ClipGradNorm(optimizer->params(), options.clip_norm);
      optimizer->set_learning_rate(
          ScheduledLr(options, step++, total_steps));
      optimizer->Step();
      optimizer->ZeroGrad();
    };
    for (size_t idx : order) {
      nn::Tensor loss =
          model.ForwardLoss(examples[idx], /*training=*/true, rng);
      epoch_loss += loss.item();
      nn::Scale(loss, 1.0f / static_cast<float>(options.batch_size))
          .Backward();
      if (++in_batch == options.batch_size) {
        take_step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) take_step();
    epoch_losses.push_back(epoch_loss /
                           static_cast<double>(examples.size()));
  }
  return epoch_losses;
}

TEST(TrainDeterminismTest, FullTrainingIdenticalAcrossWorkerCounts) {
  const RunResult serial = RunFull(1);
  ExpectBitwiseEqual(serial, RunFull(2), "2 workers");
  ExpectBitwiseEqual(serial, RunFull(8), "8 workers");
}

TEST(TrainDeterminismTest, LoraTrainingAndCheckpointBytesIdentical) {
  std::string bytes_1, bytes_2, bytes_8;
  const RunResult serial = RunLora(1, /*dropout=*/0.1f, &bytes_1);
  const RunResult two = RunLora(2, /*dropout=*/0.1f, &bytes_2);
  const RunResult eight = RunLora(8, /*dropout=*/0.1f, &bytes_8);
  ExpectBitwiseEqual(serial, two, "2 workers");
  ExpectBitwiseEqual(serial, eight, "8 workers");
  ASSERT_FALSE(bytes_1.empty());
  EXPECT_EQ(bytes_1, bytes_2);
  EXPECT_EQ(bytes_1, bytes_8);
}

TEST(TrainDeterminismTest, MatchesPreChangeSerialTrainer) {
  // With dropout off nothing consumes the rng between shuffles, so the
  // legacy shared-rng loop and the stream-per-example trainer see identical
  // randomness — and single-commit closures (GradAccum) make slot-merged
  // gradients bit-for-bit the directly-accumulated ones (DESIGN.md §5e).
  const auto make_model = [] {
    // The tiny fixture with backbone dropout off: the legacy loop draws
    // dropout masks from the shared rng, the new trainer from per-example
    // streams, so the two can only be compared with dropout silent.
    std::vector<std::string> corpus;
    for (auto& [text, label] : fault_test::KeywordTask()) {
      corpus.push_back(text);
    }
    text::Tokenizer tokenizer;
    tokenizer.Train(corpus, 1200, 1);
    ModelConfig config;
    config.dim = 16;
    config.num_heads = 2;
    config.num_layers = 1;
    config.max_seq = 24;
    config.init_seed = 11;
    config.dropout = 0.0f;
    auto model = std::make_shared<SimLlm>(config, std::move(tokenizer));
    nn::LoraConfig lora;
    lora.rank = 4;
    lora.alpha = 8.0f;
    lora.dropout = 0.0f;
    model->EnableLora(lora);
    return model;
  };
  TrainOptions options = BaseOptions();

  auto legacy_model = make_model();
  const auto examples = fault_test::KeywordExamples(*legacy_model);
  const std::vector<double> legacy_losses =
      LegacySerialTrain(*legacy_model, examples, options);
  const auto legacy_state = legacy_model->SnapshotState();

  for (int threads : {1, 8}) {
    auto model = make_model();
    options.num_threads = threads;
    TrainStats stats = TrainModel(*model, examples, options);
    ExpectBitwiseEqual({legacy_losses, legacy_state},
                       {stats.epoch_train_loss, model->SnapshotState()},
                       "threads=" + std::to_string(threads));
  }
}

TEST(TrainDeterminismTest, WorkerCountResolvesFromEnvironment) {
  const RunResult explicit_two = RunFull(2);
  ASSERT_EQ(setenv("TM_TRAIN_THREADS", "2", /*overwrite=*/1), 0);
  const RunResult from_env = RunFull(/*threads=*/0);
  unsetenv("TM_TRAIN_THREADS");
  ExpectBitwiseEqual(explicit_two, from_env, "env-resolved");
}

}  // namespace
}  // namespace tailormatch::llm
