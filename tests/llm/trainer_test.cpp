#include "llm/trainer.h"

#include <gtest/gtest.h>

#include "llm/pretrainer.h"

namespace tailormatch::llm {
namespace {

// A trivially learnable task: label = whether the word "same" appears.
std::vector<std::pair<std::string, bool>> KeywordTask() {
  std::vector<std::pair<std::string, bool>> data;
  const char* positives[] = {
      "entity 1: alpha same entity 2: beta", "same entity 1: x entity 2: y",
      "entity 1: gamma entity 2: same delta"};
  const char* negatives[] = {
      "entity 1: alpha entity 2: beta", "entity 1: x entity 2: y other",
      "entity 1: gamma entity 2: delta"};
  for (int repeat = 0; repeat < 10; ++repeat) {
    for (const char* text : positives) data.emplace_back(text, true);
    for (const char* text : negatives) data.emplace_back(text, false);
  }
  return data;
}

SimLlm MakeTinyModel() {
  std::vector<std::string> corpus;
  for (auto& [text, label] : KeywordTask()) corpus.push_back(text);
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1200, 1);
  ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.max_seq = 24;
  config.init_seed = 11;
  return SimLlm(config, std::move(tokenizer));
}

TEST(TrainerTest, LearnsKeywordTask) {
  SimLlm model = MakeTinyModel();
  std::vector<TrainExample> examples;
  for (auto& [text, label] : KeywordTask()) {
    examples.push_back(model.EncodeExample(text, label));
  }
  TrainOptions options;
  options.epochs = 12;
  options.batch_size = 8;
  options.learning_rate = 5e-3f;
  options.seed = 3;
  TrainStats stats = TrainModel(model, examples, options);
  ASSERT_EQ(stats.epoch_train_loss.size(), 12u);
  EXPECT_LT(stats.epoch_train_loss.back(), stats.epoch_train_loss.front());
  // Perfect separation on the training distribution.
  int correct = 0;
  for (auto& [text, label] : KeywordTask()) {
    const bool predicted = model.PredictMatchProbability(text) > 0.5;
    correct += predicted == label ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / KeywordTask().size(), 0.95);
}

TEST(TrainerTest, DeterministicTraining) {
  auto run = []() {
    SimLlm model = MakeTinyModel();
    std::vector<TrainExample> examples;
    for (auto& [text, label] : KeywordTask()) {
      examples.push_back(model.EncodeExample(text, label));
    }
    TrainOptions options;
    options.epochs = 3;
    options.learning_rate = 1e-3f;
    options.seed = 7;
    TrainModel(model, examples, options);
    return model.PredictMatchProbability("entity 1: alpha same entity 2: b");
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(TrainerTest, ValidationCallbackRunsPerEpoch) {
  SimLlm model = MakeTinyModel();
  std::vector<TrainExample> examples;
  for (auto& [text, label] : KeywordTask()) {
    examples.push_back(model.EncodeExample(text, label));
  }
  TrainOptions options;
  options.epochs = 4;
  options.learning_rate = 1e-3f;
  int calls = 0;
  TrainStats stats =
      TrainModel(model, examples, options, [&calls](const SimLlm&) {
        ++calls;
        return static_cast<double>(calls);  // strictly improving
      });
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(stats.best_epoch, 3);
  EXPECT_DOUBLE_EQ(stats.best_score, 4.0);
}

TEST(TrainerTest, BestCheckpointRestored) {
  SimLlm model = MakeTinyModel();
  std::vector<TrainExample> examples;
  for (auto& [text, label] : KeywordTask()) {
    examples.push_back(model.EncodeExample(text, label));
  }
  std::vector<std::vector<float>> epoch1_state;
  int epoch = 0;
  TrainOptions options;
  options.epochs = 3;
  options.learning_rate = 5e-3f;
  TrainModel(model, examples, options,
             [&](const SimLlm& m) {
               ++epoch;
               if (epoch == 1) {
                 epoch1_state = m.SnapshotState();
                 return 10.0;  // epoch 1 "wins"
               }
               return 1.0;
             });
  // Final weights must equal the epoch-1 snapshot.
  auto final_state = model.SnapshotState();
  ASSERT_EQ(final_state.size(), epoch1_state.size());
  for (size_t i = 0; i < final_state.size(); ++i) {
    EXPECT_EQ(final_state[i], epoch1_state[i]) << "tensor " << i;
  }
}

TEST(TrainerDeathTest, EmptyTrainingSetRejected) {
  SimLlm model = MakeTinyModel();
  TrainOptions options;
  EXPECT_DEATH(TrainModel(model, {}, options), "empty training set");
}

TEST(PretrainerTest, CorpusBalancedAndMixed) {
  std::vector<data::EntityPair> pairs = BuildPretrainPairs(400, 9);
  ASSERT_EQ(pairs.size(), 400u);
  int positives = 0, scholar = 0;
  for (const data::EntityPair& pair : pairs) {
    positives += pair.label ? 1 : 0;
    scholar += pair.left.domain == data::Domain::kScholar ? 1 : 0;
  }
  EXPECT_NEAR(positives / 400.0, 0.5, 0.1);
  EXPECT_GT(scholar, 60);   // both domains present
  EXPECT_LT(scholar, 200);  // products dominate
}

TEST(PretrainerTest, PromptVarietyOrdering) {
  // Instruction-tuned families saw more phrasings (=> less prompt
  // sensitivity, Section 3.3).
  EXPECT_LT(PretrainPromptVariety(ModelFamily::kLlama8B),
            PretrainPromptVariety(ModelFamily::kGpt4oMini));
}

TEST(PretrainerTest, PromptPhrasingsDistinct) {
  data::EntityPair pair;
  pair.left.surface = "a";
  pair.right.surface = "b";
  std::set<std::string> prompts;
  for (int phrasing = 0; phrasing < 6; ++phrasing) {
    prompts.insert(PretrainPrompt(pair, phrasing));
  }
  EXPECT_EQ(prompts.size(), 6u);
}

}  // namespace
}  // namespace tailormatch::llm
