#include <gtest/gtest.h>

#include "llm/trainer.h"

namespace tailormatch::llm {
namespace {

SimLlm TinyModel() {
  std::vector<std::string> corpus = {"entity 1: same alpha entity 2: beta"};
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1400, 1);
  ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.init_seed = 21;
  return SimLlm(config, std::move(tokenizer));
}

std::vector<TrainExample> Examples(const SimLlm& model) {
  std::vector<TrainExample> examples;
  for (int i = 0; i < 40; ++i) {
    const bool label = i % 2 == 0;
    examples.push_back(model.EncodeExample(
        label ? "entity 1: same alpha entity 2: same alpha"
              : "entity 1: alpha entity 2: beta",
        label));
  }
  return examples;
}

class ScheduleTest : public ::testing::TestWithParam<LrSchedule> {};

TEST_P(ScheduleTest, TrainingConvergesUnderEverySchedule) {
  SimLlm model = TinyModel();
  TrainOptions options;
  options.epochs = 6;
  options.batch_size = 8;
  options.learning_rate = 5e-3f;
  options.schedule = GetParam();
  TrainStats stats = TrainModel(model, Examples(model), options);
  EXPECT_LT(stats.epoch_train_loss.back(), stats.epoch_train_loss.front());
}

TEST_P(ScheduleTest, SchedulesProduceDistinctButDeterministicRuns) {
  auto run = [&](LrSchedule schedule) {
    SimLlm model = TinyModel();
    TrainOptions options;
    options.epochs = 2;
    options.learning_rate = 2e-3f;
    options.schedule = schedule;
    TrainModel(model, Examples(model), options);
    return model.PredictMatchProbability(
        "entity 1: same alpha entity 2: same alpha");
  };
  EXPECT_DOUBLE_EQ(run(GetParam()), run(GetParam()));  // deterministic
  if (GetParam() != LrSchedule::kConstant) {
    EXPECT_NE(run(GetParam()), run(LrSchedule::kConstant));
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, ScheduleTest,
                         ::testing::Values(LrSchedule::kConstant,
                                           LrSchedule::kCosine,
                                           LrSchedule::kLinear),
                         [](const ::testing::TestParamInfo<LrSchedule>& info) {
                           switch (info.param) {
                             case LrSchedule::kConstant:
                               return "Constant";
                             case LrSchedule::kCosine:
                               return "Cosine";
                             default:
                               return "Linear";
                           }
                         });

}  // namespace
}  // namespace tailormatch::llm
