#include "llm/sim_llm.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "llm/trainer.h"
#include "prompt/prompt.h"

namespace tailormatch::llm {
namespace {

text::Tokenizer TinyTokenizer() {
  std::vector<std::string> corpus = {
      "do the two entity descriptions refer to the same real-world product",
      "entity 1: jabra evolve 80 stereo headset",
      "entity 2: sram pg 730 cassette 7sp",
      "entity 1: sonara pulse monitor entity 2: vextech aspire keyboard",
  };
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1500, 1);
  return tokenizer;
}

ModelConfig TinyConfig() {
  ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.max_seq = 32;
  config.init_seed = 5;
  return config;
}

TEST(SimLlmTest, PredictIsDeterministicAndBounded) {
  SimLlm model(TinyConfig(), TinyTokenizer());
  const std::string prompt =
      "Do the two entity descriptions refer to the same real-world product? "
      "Entity 1: jabra evolve 80 Entity 2: jabra evolve 80";
  const double p1 = model.PredictMatchProbability(prompt);
  const double p2 = model.PredictMatchProbability(prompt);
  EXPECT_DOUBLE_EQ(p1, p2);
  EXPECT_GE(p1, 0.0);
  EXPECT_LE(p1, 1.0);
}

TEST(SimLlmTest, RespondIsParseable) {
  SimLlm model(TinyConfig(), TinyTokenizer());
  const std::string response = model.Respond("Entity 1: a Entity 2: b");
  bool label = false;
  EXPECT_TRUE(prompt::ParseYesNo(response, &label));
}

TEST(SimLlmTest, EncodeExampleTruncatesToMaxSeq) {
  SimLlm model(TinyConfig(), TinyTokenizer());
  std::string lengthy;
  for (int i = 0; i < 200; ++i) lengthy += "jabra ";
  TrainExample example = model.EncodeExample(lengthy, true);
  EXPECT_LE(example.tokens.size(), 32u);
  EXPECT_TRUE(example.label);
}

TEST(SimLlmTest, ForwardLossIsFiniteAndPositive) {
  SimLlm model(TinyConfig(), TinyTokenizer());
  TrainExample example = model.EncodeExample("Entity 1: a Entity 2: b", true);
  Rng rng(1);
  nn::Tensor loss = model.ForwardLoss(example, /*training=*/false, rng);
  EXPECT_GT(loss.item(), 0.0f);
  EXPECT_TRUE(std::isfinite(loss.item()));
}

TEST(SimLlmTest, AuxLossesIncreaseTotalLoss) {
  SimLlm model(TinyConfig(), TinyTokenizer());
  TrainExample example = model.EncodeExample("Entity 1: a Entity 2: b", true);
  Rng rng(2);
  const float base = model.ForwardLoss(example, false, rng).item();
  example.has_attr_targets = true;
  example.attr_targets.assign(8, 0.9f);
  example.attr_weights.assign(8, 1.0f);
  example.attr_mask.assign(8, 1.0f);
  example.aux_weight = 1.0f;
  const float with_aux = model.ForwardLoss(example, false, rng).item();
  EXPECT_GT(with_aux, base);
}

TEST(SimLlmTest, LoraShrinksTrainableSet) {
  SimLlm model(TinyConfig(), TinyTokenizer());
  size_t full = 0;
  for (const nn::Tensor& t : model.TrainableParameters()) full += t.size();
  nn::LoraConfig lora;
  lora.rank = 2;
  model.EnableLora(lora);
  size_t adapted = 0;
  for (const nn::Tensor& t : model.TrainableParameters()) adapted += t.size();
  EXPECT_LT(adapted, full / 2);
  EXPECT_TRUE(model.lora_enabled());
}

TEST(SimLlmTest, MergeLoraPreservesPredictions) {
  SimLlm model(TinyConfig(), TinyTokenizer());
  nn::LoraConfig lora;
  lora.rank = 2;
  lora.dropout = 0.0f;
  model.EnableLora(lora);
  // Perturb adapters so the merge is non-trivial.
  for (nn::Tensor& t : model.TrainableParameters()) {
    for (float& v : t.data()) v += 0.05f;
  }
  const std::string prompt = "Entity 1: jabra evolve Entity 2: jabra evolve";
  const double before = model.PredictMatchProbability(prompt);
  model.MergeLora();
  EXPECT_FALSE(model.lora_enabled());
  EXPECT_NEAR(model.PredictMatchProbability(prompt), before, 1e-4);
}

TEST(SimLlmTest, SnapshotRestoreRoundTrips) {
  SimLlm model(TinyConfig(), TinyTokenizer());
  const std::string prompt = "Entity 1: a Entity 2: b";
  const double original = model.PredictMatchProbability(prompt);
  auto snapshot = model.SnapshotState();
  for (nn::Tensor& t : model.TrainableParameters()) {
    for (float& v : t.data()) v += 0.3f;
  }
  EXPECT_NE(model.PredictMatchProbability(prompt), original);
  model.RestoreState(snapshot);
  EXPECT_DOUBLE_EQ(model.PredictMatchProbability(prompt), original);
}

TEST(SimLlmTest, CloneIsIndependent) {
  SimLlm model(TinyConfig(), TinyTokenizer());
  auto clone = model.Clone();
  const std::string prompt = "Entity 1: a Entity 2: b";
  EXPECT_DOUBLE_EQ(clone->PredictMatchProbability(prompt),
                   model.PredictMatchProbability(prompt));
  for (nn::Tensor& t : clone->TrainableParameters()) {
    for (float& v : t.data()) v += 0.5f;
  }
  EXPECT_NE(clone->PredictMatchProbability(prompt),
            model.PredictMatchProbability(prompt));
}

TEST(SimLlmTest, CheckpointRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_sim_llm_test.ckpt")
          .string();
  SimLlm model(TinyConfig(), TinyTokenizer());
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());
  Result<std::unique_ptr<SimLlm>> loaded = SimLlm::LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::string prompt =
      "Entity 1: jabra evolve 80 Entity 2: sram pg 730";
  EXPECT_DOUBLE_EQ(loaded.value()->PredictMatchProbability(prompt),
                   model.PredictMatchProbability(prompt));
  std::remove(path.c_str());
}

TEST(SimLlmTest, CheckpointRefusedWithActiveAdapters) {
  SimLlm model(TinyConfig(), TinyTokenizer());
  nn::LoraConfig lora;
  lora.rank = 2;
  model.EnableLora(lora);
  Status status = model.SaveCheckpoint("/tmp/should_not_exist.ckpt");
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SimLlmTest, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_garbage.ckpt").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  Result<std::unique_ptr<SimLlm>> loaded = SimLlm::LoadCheckpoint(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(TextBucketTest, StableAndInRange) {
  EXPECT_EQ(TextBucketForWord("match", 32), TextBucketForWord("match", 32));
  for (const char* word : {"a", "match", "different", "entity"}) {
    const int bucket = TextBucketForWord(word, 32);
    EXPECT_GE(bucket, 0);
    EXPECT_LT(bucket, 32);
  }
}

}  // namespace
}  // namespace tailormatch::llm
