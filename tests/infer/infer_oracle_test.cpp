#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "llm/infer_engine.h"
#include "llm/sim_llm.h"
#include "nn/kernels.h"
#include "nn/layers.h"
#include "text/tokenizer.h"

// Differential oracle for planned-graph inference: every probability the
// planned executor (with or without prefix-cache hits) produces must be
// bitwise identical to the dynamic autograd forward, for every template,
// batch size, batch composition, kernel backend, and thread count.

namespace tailormatch::llm {
namespace {

text::Tokenizer OracleTokenizer() {
  std::vector<std::string> corpus = {
      "do the two entity descriptions refer to the same real-world product",
      "are these records duplicates answer yes or no",
      "entity 1: jabra evolve 80 stereo headset entity 2: sram pg 730",
      "entity 1: widget pro model 500 entity 2: widget pro model 500 x",
      "entity 1: sonara pulse monitor entity 2: vextech aspire keyboard",
  };
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1500, 1);
  return tokenizer;
}

ModelConfig OracleConfig(uint64_t seed = 5) {
  ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 2;
  config.max_seq = 48;
  config.init_seed = seed;
  return config;
}

// Two instruction templates (shared prefixes) x several pair suffixes, plus
// a pathological prompt with no "entity" markers at all.
std::vector<std::string> OraclePrompts() {
  const std::string t1 =
      "Do the two entity descriptions refer to the same real-world product? ";
  const std::string t2 = "Are these records duplicates? Answer yes or no. ";
  std::vector<std::string> prompts;
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"jabra evolve 80 stereo headset", "jabra evolve 80 headset"},
      {"widget pro model 500", "widget pro model 500 x"},
      {"sonara pulse monitor", "vextech aspire keyboard"},
      {"sram pg 730 cassette", "sram pg 730"},
  };
  for (const auto& [a, b] : pairs) {
    prompts.push_back(t1 + "Entity 1: " + a + " Entity 2: " + b);
    prompts.push_back(t2 + "Entity 1: " + a + " Entity 2: " + b);
  }
  prompts.push_back("no markers at all just words");
  return prompts;
}

std::vector<double> DynamicProbabilities(const SimLlm& model,
                                         const std::vector<std::string>& p,
                                         int threads = 1) {
  InferExecutorModeScope scope(InferExecutorMode::kDynamic);
  return model.PredictMatchProbabilities(p, threads);
}

std::vector<double> PlannedProbabilities(const SimLlm& model,
                                         const std::vector<std::string>& p,
                                         int threads = 1) {
  InferExecutorModeScope scope(InferExecutorMode::kPlanned);
  return model.PredictMatchProbabilities(p, threads);
}

void ExpectBitwiseEqual(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "prompt " << i << " diverged";
  }
}

TEST(InferOracleTest, PlannedMatchesDynamicAcrossTemplatesAndBatches) {
  SimLlm model(OracleConfig(), OracleTokenizer());
  const std::vector<std::string> prompts = OraclePrompts();
  const std::vector<double> expected = DynamicProbabilities(model, prompts);

  // Single-pair path, repeated so later calls hit both plan and prefix
  // caches — repeats must stay bitwise identical to the first scoring.
  for (int repeat = 0; repeat < 3; ++repeat) {
    InferExecutorModeScope scope(InferExecutorMode::kPlanned);
    for (size_t i = 0; i < prompts.size(); ++i) {
      EXPECT_EQ(model.PredictMatchProbability(prompts[i]), expected[i])
          << "prompt " << i << " repeat " << repeat;
    }
  }
  // Batched path in varying compositions (reversed, interleaved, singleton).
  ExpectBitwiseEqual(PlannedProbabilities(model, prompts), expected);
  std::vector<std::string> reversed(prompts.rbegin(), prompts.rend());
  std::vector<double> expected_reversed(expected.rbegin(), expected.rend());
  ExpectBitwiseEqual(PlannedProbabilities(model, reversed),
                     expected_reversed);
  ExpectBitwiseEqual(PlannedProbabilities(model, {prompts[0]}),
                     {expected[0]});
}

TEST(InferOracleTest, PlannedMatchesDynamicAcrossBackendsAndThreads) {
  SimLlm model(OracleConfig(), OracleTokenizer());
  const std::vector<std::string> prompts = OraclePrompts();
  for (nn::kernels::Backend backend :
       {nn::kernels::Backend::kReference, nn::kernels::Backend::kBlocked}) {
    // The kernel contract guarantees bitwise identity across thread counts
    // for a fixed backend (backends may differ from each other in low bits),
    // so the cross-config reference is per backend.
    std::vector<double> reference;
    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE(testing::Message()
                   << "backend=" << static_cast<int>(backend)
                   << " threads=" << threads);
      nn::kernels::KernelScope scope(backend, threads);
      const std::vector<double> dynamic_probs =
          DynamicProbabilities(model, prompts, threads);
      const std::vector<double> planned_probs =
          PlannedProbabilities(model, prompts, threads);
      ExpectBitwiseEqual(planned_probs, dynamic_probs);
      if (reference.empty()) {
        reference = planned_probs;
      } else {
        ExpectBitwiseEqual(planned_probs, reference);
      }
    }
  }
}

TEST(InferOracleTest, PrefixCachePopulatesAndHitsStayExact) {
  SimLlm model(OracleConfig(), OracleTokenizer());
  const std::vector<std::string> prompts = OraclePrompts();
  const std::vector<double> expected = DynamicProbabilities(model, prompts);
  ExpectBitwiseEqual(PlannedProbabilities(model, prompts), expected);
  // The two templates share prefixes across several pair suffixes, so the
  // prefix cache must have filled (the no-marker prompt contributes none).
  EXPECT_GT(model.infer_engine().prefix_entry_count(), 0);
  EXPECT_GT(model.infer_engine().plan_count(), 0);
  // Second pass rides the caches and must not drift.
  ExpectBitwiseEqual(PlannedProbabilities(model, prompts), expected);
}

TEST(InferOracleTest, InPlaceWeightMutationStrandsPrefixState) {
  SimLlm model(OracleConfig(), OracleTokenizer());
  const std::vector<std::string> prompts = OraclePrompts();
  ExpectBitwiseEqual(PlannedProbabilities(model, prompts),
                     DynamicProbabilities(model, prompts));
  const uint64_t epoch_before = model.infer_engine().weights_epoch();

  // Mutate weights in place the way an optimizer step does, then notify.
  std::vector<nn::Tensor> state = model.StateTensors();
  for (float& v : state[0].data()) v += 0.25f;
  model.NotifyWeightsMutated();
  EXPECT_GT(model.infer_engine().weights_epoch(), epoch_before);

  // Plans read weights live; prefix entries from the old epoch must not be
  // served. Planned must track the *new* dynamic results exactly.
  ExpectBitwiseEqual(PlannedProbabilities(model, prompts),
                     DynamicProbabilities(model, prompts));
}

TEST(InferOracleTest, RestoreStateInvalidatesPlansAndPrefix) {
  SimLlm model(OracleConfig(), OracleTokenizer());
  const std::vector<std::string> prompts = OraclePrompts();
  const std::vector<std::vector<float>> snapshot = model.SnapshotState();
  const std::vector<double> before =
      PlannedProbabilities(model, prompts);

  std::vector<std::vector<float>> perturbed = snapshot;
  for (float& v : perturbed[0]) v -= 0.5f;
  model.RestoreState(perturbed);
  ExpectBitwiseEqual(PlannedProbabilities(model, prompts),
                     DynamicProbabilities(model, prompts));

  // Restoring the original snapshot must reproduce the original bits.
  model.RestoreState(snapshot);
  ExpectBitwiseEqual(PlannedProbabilities(model, prompts), before);
}

TEST(InferOracleTest, LoraGraphStaysExactWithPrefixReuseDisabled) {
  SimLlm model(OracleConfig(), OracleTokenizer());
  nn::LoraConfig lora;
  lora.rank = 2;
  model.EnableLora(lora);
  const std::vector<std::string> prompts = OraclePrompts();
  const std::vector<double> expected = DynamicProbabilities(model, prompts);
  ExpectBitwiseEqual(PlannedProbabilities(model, prompts), expected);
  // The adapter chain adds extra consumers of the first layernorm, which
  // fails the provable-prefix pattern: reuse must be off, correctness kept.
  ExpectBitwiseEqual(PlannedProbabilities(model, prompts), expected);
  EXPECT_EQ(model.infer_engine().prefix_entry_count(), 0);

  model.MergeLora();
  ExpectBitwiseEqual(PlannedProbabilities(model, prompts),
                     DynamicProbabilities(model, prompts));
}

TEST(InferOracleTest, DynamicModeEnvSelectableViaScope) {
  SimLlm model(OracleConfig(), OracleTokenizer());
  InferExecutorModeScope scope(InferExecutorMode::kDynamic);
  EXPECT_EQ(infer_executor_mode(), InferExecutorMode::kDynamic);
  // Dynamic mode must not populate the planned caches.
  (void)model.PredictMatchProbability(OraclePrompts()[0]);
  EXPECT_EQ(model.infer_engine().plan_count(), 0);
}

}  // namespace
}  // namespace tailormatch::llm
