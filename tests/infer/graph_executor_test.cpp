#include "nn/graph_executor.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "nn/arena.h"
#include "nn/kernels.h"
#include "nn/tensor.h"
#include "util/rng.h"

// Plan capture / arena executor unit tests: capture a hand-built attention
// stub, check the liveness plan reuses buffers, and assert planned
// execution is bitwise identical to the dynamic graph with zero per-op
// heap allocations after warmup.

namespace tailormatch::nn {
namespace {

constexpr int kDim = 8;

// A miniature pre-attention stack shaped like SimLlm block 0: layernorm on
// the embedding input, q/k/v projections with bias, one attention mix, and
// mean/max pooling. Weights require grad (like real model parameters), so
// the dynamic path pays full autograd wiring.
struct StubModel {
  Tensor gain, lbias;
  Tensor wq, bq, wk, bk, wv, bv;

  explicit StubModel(uint64_t seed) {
    Rng rng(seed);
    gain = Tensor::Full(1, kDim, 1.0f, /*requires_grad=*/true);
    lbias = Tensor::Zeros(1, kDim, /*requires_grad=*/true);
    wq = Tensor::Randn(kDim, kDim, 0.3f, rng);
    bq = Tensor::Randn(1, kDim, 0.1f, rng);
    wk = Tensor::Randn(kDim, kDim, 0.3f, rng);
    bk = Tensor::Randn(1, kDim, 0.1f, rng);
    wv = Tensor::Randn(kDim, kDim, 0.3f, rng);
    bv = Tensor::Randn(1, kDim, 0.1f, rng);
  }

  Tensor Forward(const Tensor& x) const {
    Tensor ln = LayerNormOp(x, gain, lbias);
    Tensor q = AddRowBroadcast(MatMul(ln, wq), bq);
    Tensor k = AddRowBroadcast(MatMul(ln, wk), bk);
    Tensor v = AddRowBroadcast(MatMul(ln, wv), bv);
    Tensor scores = Softmax(Scale(MatMul(q, Transpose(k)), 0.5f));
    Tensor mixed = MatMul(scores, v);
    Tensor h = Add(x, mixed);
    return ConcatCols({MeanRows(h), MaxRows(h)});
  }
};

Tensor RandomInput(int rows, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn(rows, kDim, 1.0f, rng, /*requires_grad=*/false);
}

std::shared_ptr<graph::ForwardPlan> CapturePlan(const StubModel& model,
                                                int rows, int* input_index) {
  Tensor x = RandomInput(rows, 999);
  graph::GraphCapture capture;
  *input_index = capture.AddInput(x);
  Tensor out = model.Forward(x);
  return capture.Finish(out);
}

TEST(GraphExecutorTest, PlannedMatchesDynamicBitwise) {
  const StubModel model(7);
  int input_index = 0;
  auto plan = CapturePlan(model, /*rows=*/12, &input_index);
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->num_steps(), 10);

  Arena arena;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Tensor x = RandomInput(12, seed);
    Tensor expected = model.Forward(x);
    float* in = plan->InputPtr(arena, input_index);
    std::memcpy(in, x.data().data(), x.size() * sizeof(float));
    std::vector<float> got(expected.size());
    plan->Run(arena, got.data(), got.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected.data()[i]) << "element " << i;
    }
  }
}

TEST(GraphExecutorTest, PlannedMatchesDynamicAcrossBackendsAndThreads) {
  const StubModel model(21);
  int input_index = 0;
  auto plan = CapturePlan(model, /*rows=*/16, &input_index);
  ASSERT_NE(plan, nullptr);

  Tensor x = RandomInput(16, 3);
  std::vector<float> reference;
  for (kernels::Backend backend :
       {kernels::Backend::kReference, kernels::Backend::kBlocked}) {
    for (int threads : {1, 2, 8}) {
      kernels::KernelScope scope(backend, threads);
      Tensor expected = model.Forward(x);
      Arena arena;
      float* in = plan->InputPtr(arena, input_index);
      std::memcpy(in, x.data().data(), x.size() * sizeof(float));
      std::vector<float> got(expected.size());
      plan->Run(arena, got.data(), got.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], expected.data()[i]);
      }
      if (reference.empty()) {
        reference = got;
      } else {
        EXPECT_EQ(reference, got) << "backend/thread variation changed bits";
      }
    }
  }
}

TEST(GraphExecutorTest, LivenessPlanReusesBuffers) {
  const StubModel model(5);
  int input_index = 0;
  auto plan = CapturePlan(model, /*rows=*/24, &input_index);
  ASSERT_NE(plan, nullptr);
  // The arena footprint must be strictly smaller than the sum of all
  // buffers: dead intermediates hand their space to later steps.
  EXPECT_LT(plan->arena_bytes(), plan->total_buffer_bytes());
  EXPECT_GT(plan->arena_bytes(), 0u);
}

TEST(GraphExecutorTest, SteadyStateRunsAllocateNothing) {
  const StubModel model(13);
  int input_index = 0;
  auto plan = CapturePlan(model, /*rows=*/12, &input_index);
  ASSERT_NE(plan, nullptr);

  Arena arena;
  Tensor x = RandomInput(12, 4);
  std::vector<float> out(2 * kDim);
  // Warmup grows the arena once.
  float* in = plan->InputPtr(arena, input_index);
  std::memcpy(in, x.data().data(), x.size() * sizeof(float));
  plan->Run(arena, out.data(), out.size());
  const int64_t grows_after_warmup = arena.grow_count();
  EXPECT_EQ(grows_after_warmup, 1);

  // Satellite guarantee: steady-state planned forwards construct zero
  // tensors (no autograd graph) and never touch the heap via the arena.
  const int64_t tensors_before = internal::TensorImplAllocCount();
  for (int iter = 0; iter < 10; ++iter) {
    float* p = plan->InputPtr(arena, input_index);
    std::memcpy(p, x.data().data(), x.size() * sizeof(float));
    plan->Run(arena, out.data(), out.size());
  }
  EXPECT_EQ(internal::TensorImplAllocCount(), tensors_before);
  EXPECT_EQ(arena.grow_count(), grows_after_warmup);
}

TEST(GraphExecutorTest, UnsupportedOpPoisonsCapture) {
  Tensor x = RandomInput(4, 1);
  Rng rng(2);
  Tensor w = Tensor::Randn(kDim, kDim, 0.2f, rng);
  graph::GraphCapture capture;
  capture.AddInput(x);
  Tensor h = MatMul(x, w);
  Tensor loss = Sum(h);  // reduction op outside the planned vocabulary
  EXPECT_EQ(capture.Finish(loss), nullptr);
}

TEST(GraphExecutorTest, FinishRejectsForeignOutput) {
  Tensor x = RandomInput(4, 1);
  graph::GraphCapture capture;
  capture.AddInput(x);
  Tensor unrelated = Tensor::Full(1, 2, 3.0f);
  EXPECT_EQ(capture.Finish(unrelated), nullptr);
}

TEST(GraphExecutorTest, PrefixReuseTagsQkvPattern) {
  const StubModel model(11);
  int input_index = 0;
  auto plan = CapturePlan(model, /*rows=*/12, &input_index);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->EnablePrefixReuse(input_index));
  EXPECT_TRUE(plan->prefix_reusable());
  int split_steps = 0, slots = 0;
  for (const graph::Step& step : plan->steps()) {
    split_steps += step.row_split ? 1 : 0;
    slots += step.prefix_slot >= 0 ? 1 : 0;
  }
  EXPECT_EQ(split_steps, 7);  // layernorm + 3 matmuls + 3 bias adds
  EXPECT_EQ(slots, 3);        // q, k, v
}

TEST(GraphExecutorTest, PrefixReuseRunsBitwiseEqualToFull) {
  const StubModel model(17);
  const int rows = 12, prefix_rows = 5;
  int input_index = 0;
  auto plan = CapturePlan(model, rows, &input_index);
  ASSERT_NE(plan, nullptr);
  ASSERT_TRUE(plan->EnablePrefixReuse(input_index));

  Arena arena;
  Tensor first = RandomInput(rows, 31);
  // Cold run captures the prefix state for first's leading rows.
  graph::PrefixState state;
  state.rows = prefix_rows;
  state.dim = kDim;
  state.embed.assign(first.data().begin(),
                     first.data().begin() + prefix_rows * kDim);
  float* in = plan->InputPtr(arena, input_index);
  std::memcpy(in, first.data().data(), first.size() * sizeof(float));
  std::vector<float> cold_out(2 * kDim);
  plan->Run(arena, cold_out.data(), cold_out.size(), nullptr, &state);
  EXPECT_EQ(state.q.size(), static_cast<size_t>(prefix_rows * kDim));

  // Second request: same prefix rows, different suffix.
  Tensor second = RandomInput(rows, 32);
  std::memcpy(second.data().data(), first.data().data(),
              static_cast<size_t>(prefix_rows) * kDim * sizeof(float));
  Tensor expected = model.Forward(second);

  float* in2 = plan->InputPtr(arena, input_index);
  std::memcpy(in2, second.data().data(), second.size() * sizeof(float));
  std::vector<float> hit_out(2 * kDim);
  plan->Run(arena, hit_out.data(), hit_out.size(), &state, nullptr);
  for (size_t i = 0; i < hit_out.size(); ++i) {
    EXPECT_EQ(hit_out[i], expected.data()[i]) << "element " << i;
  }
}

}  // namespace
}  // namespace tailormatch::nn
