#include "util/serialize.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace tailormatch {
namespace {

TEST(SerializeTest, RoundTripScalars) {
  BinaryWriter writer;
  writer.WriteU32(123u);
  writer.WriteU64(0xdeadbeefcafef00dULL);
  writer.WriteI32(-42);
  writer.WriteFloat(3.5f);
  writer.WriteDouble(-2.25);
  writer.WriteString("hello world");

  BinaryReader reader(writer.buffer());
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  float f;
  double d;
  std::string s;
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI32(&i32).ok());
  ASSERT_TRUE(reader.ReadFloat(&f).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  ASSERT_TRUE(reader.ReadString(&s).ok());
  EXPECT_EQ(u32, 123u);
  EXPECT_EQ(u64, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(i32, -42);
  EXPECT_FLOAT_EQ(f, 3.5f);
  EXPECT_DOUBLE_EQ(d, -2.25);
  EXPECT_EQ(s, "hello world");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, RoundTripFloatVector) {
  BinaryWriter writer;
  writer.WriteFloatVector({1.0f, -2.0f, 0.5f});
  BinaryReader reader(writer.buffer());
  std::vector<float> values;
  ASSERT_TRUE(reader.ReadFloatVector(&values).ok());
  EXPECT_EQ(values, (std::vector<float>{1.0f, -2.0f, 0.5f}));
}

TEST(SerializeTest, TruncatedBufferFails) {
  BinaryWriter writer;
  writer.WriteU64(7);
  BinaryReader reader(writer.buffer().substr(0, 3));
  uint64_t value;
  EXPECT_FALSE(reader.ReadU64(&value).ok());
}

TEST(SerializeTest, OversizedStringLengthFails) {
  BinaryWriter writer;
  writer.WriteU32(1000);  // claims 1000 bytes, provides none
  BinaryReader reader(writer.buffer());
  std::string value;
  EXPECT_FALSE(reader.ReadString(&value).ok());
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_serialize_test.bin")
          .string();
  BinaryWriter writer;
  writer.WriteString("persisted");
  ASSERT_TRUE(writer.Flush(path).ok());
  Result<BinaryReader> reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  std::string value;
  ASSERT_TRUE(reader.value().ReadString(&value).ok());
  EXPECT_EQ(value, "persisted");
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Result<BinaryReader> reader =
      BinaryReader::FromFile("/nonexistent/definitely/missing.bin");
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
}

TEST(SerializeTest, OversizedVectorLengthFailsWithoutAllocating) {
  BinaryWriter writer;
  writer.WriteU32(0x40000000u);  // claims 1G floats, provides none
  BinaryReader reader(writer.buffer());
  std::vector<float> values;
  EXPECT_FALSE(reader.ReadFloatVector(&values).ok());
  EXPECT_TRUE(values.empty());  // rejected before the resize
}

TEST(SerializeTest, FramedFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_serialize_framed.bin")
          .string();
  BinaryWriter writer;
  writer.WriteString("framed payload");
  writer.WriteU32(7);
  ASSERT_TRUE(writer.FlushFramed(path).ok());
  Result<BinaryReader> reader = BinaryReader::FromFramedFile(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  std::string value;
  uint32_t number;
  ASSERT_TRUE(reader.value().ReadString(&value).ok());
  ASSERT_TRUE(reader.value().ReadU32(&number).ok());
  EXPECT_EQ(value, "framed payload");
  EXPECT_EQ(number, 7u);
  EXPECT_TRUE(reader.value().AtEnd());
  std::remove(path.c_str());
}

TEST(SerializeTest, FramedFileRejectsFlippedBit) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_serialize_flip.bin")
          .string();
  BinaryWriter writer;
  writer.WriteString("payload under test");
  ASSERT_TRUE(writer.FlushFramed(path).ok());
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(20);  // inside the payload, past the 16-byte header
    char byte;
    file.seekg(20);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(20);
    file.write(&byte, 1);
  }
  Result<BinaryReader> reader = BinaryReader::FromFramedFile(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(SerializeTest, FramedFileRejectsTruncation) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_serialize_trunc.bin")
          .string();
  BinaryWriter writer;
  writer.WriteString("payload under test");
  ASSERT_TRUE(writer.FlushFramed(path).ok());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 5);
  EXPECT_FALSE(BinaryReader::FromFramedFile(path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, LegacyUnframedFileRejectedWithClearError) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_serialize_legacy.bin")
          .string();
  BinaryWriter writer;
  writer.WriteString("written before the frame format existed, and long "
                     "enough to pass the minimum-size check");
  ASSERT_TRUE(writer.Flush(path).ok());  // unframed
  Result<BinaryReader> reader = BinaryReader::FromFramedFile(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("frame header"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, QuarantineFileMovesTargetAside) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_serialize_bad.bin")
          .string();
  BinaryWriter writer;
  writer.WriteString("unreadable");
  ASSERT_TRUE(writer.Flush(path).ok());
  ASSERT_TRUE(QuarantineFile(path).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  // A second quarantine of a regenerated file replaces the first.
  ASSERT_TRUE(writer.Flush(path).ok());
  ASSERT_TRUE(QuarantineFile(path).ok());
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  EXPECT_FALSE(QuarantineFile(path).ok());  // nothing left to move
  std::remove((path + ".corrupt").c_str());
}

}  // namespace
}  // namespace tailormatch
