#include "util/serialize.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace tailormatch {
namespace {

TEST(SerializeTest, RoundTripScalars) {
  BinaryWriter writer;
  writer.WriteU32(123u);
  writer.WriteU64(0xdeadbeefcafef00dULL);
  writer.WriteI32(-42);
  writer.WriteFloat(3.5f);
  writer.WriteDouble(-2.25);
  writer.WriteString("hello world");

  BinaryReader reader(writer.buffer());
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  float f;
  double d;
  std::string s;
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI32(&i32).ok());
  ASSERT_TRUE(reader.ReadFloat(&f).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  ASSERT_TRUE(reader.ReadString(&s).ok());
  EXPECT_EQ(u32, 123u);
  EXPECT_EQ(u64, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(i32, -42);
  EXPECT_FLOAT_EQ(f, 3.5f);
  EXPECT_DOUBLE_EQ(d, -2.25);
  EXPECT_EQ(s, "hello world");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, RoundTripFloatVector) {
  BinaryWriter writer;
  writer.WriteFloatVector({1.0f, -2.0f, 0.5f});
  BinaryReader reader(writer.buffer());
  std::vector<float> values;
  ASSERT_TRUE(reader.ReadFloatVector(&values).ok());
  EXPECT_EQ(values, (std::vector<float>{1.0f, -2.0f, 0.5f}));
}

TEST(SerializeTest, TruncatedBufferFails) {
  BinaryWriter writer;
  writer.WriteU64(7);
  BinaryReader reader(writer.buffer().substr(0, 3));
  uint64_t value;
  EXPECT_FALSE(reader.ReadU64(&value).ok());
}

TEST(SerializeTest, OversizedStringLengthFails) {
  BinaryWriter writer;
  writer.WriteU32(1000);  // claims 1000 bytes, provides none
  BinaryReader reader(writer.buffer());
  std::string value;
  EXPECT_FALSE(reader.ReadString(&value).ok());
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_serialize_test.bin")
          .string();
  BinaryWriter writer;
  writer.WriteString("persisted");
  ASSERT_TRUE(writer.Flush(path).ok());
  Result<BinaryReader> reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  std::string value;
  ASSERT_TRUE(reader.value().ReadString(&value).ok());
  EXPECT_EQ(value, "persisted");
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Result<BinaryReader> reader =
      BinaryReader::FromFile("/nonexistent/definitely/missing.bin");
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace tailormatch
