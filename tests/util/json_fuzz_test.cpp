// Randomized robustness suite for the flat-JSON protocol parser. The JSONL
// serving path feeds ParseFlatObject raw bytes off a socket, so the parser
// must survive anything: truncation mid-token, deep nesting, broken escapes,
// non-UTF8 noise. Every case asserts "no crash, no UB, typed error or clean
// parse" — the suite runs under ASan/UBSan via check-fault.

#include "util/json.h"

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tailormatch {
namespace {

// Random string over a byte alphabet that stresses the escaper: quotes,
// backslashes, control bytes, multi-byte UTF-8 fragments, high bytes.
std::string FuzzString(Rng& rng, int max_len) {
  static const std::string kAlphabet =
      "abc XYZ 019\"\\\t\n\r{}[]:,\x01\x1f\x7f\x80\xc3\xa9\xe2\x82\xff";
  const int len = rng.NextInt(0, max_len);
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.NextBounded(
        static_cast<uint32_t>(kAlphabet.size()))]);
  }
  return out;
}

TEST(JsonFuzzTest, RandomFlatObjectsRoundTrip) {
  Rng rng(20260809);
  for (int iter = 0; iter < 500; ++iter) {
    std::map<std::string, std::string> original;
    const int num_keys = rng.NextInt(0, 8);
    std::string line = "{";
    bool first = true;
    for (int k = 0; k < num_keys; ++k) {
      // Unique keys: duplicate keys legitimately keep-last, which would
      // break naive map comparison.
      const std::string key =
          "k" + std::to_string(k) + FuzzString(rng, 12);
      const std::string value = FuzzString(rng, 32);
      if (original.count(key) != 0) continue;
      original[key] = value;
      if (!first) line += ",";
      first = false;
      line += json::Quote(key) + ":" + json::Quote(value);
    }
    line += "}";

    std::map<std::string, std::string> parsed;
    Status status = json::ParseFlatObject(line, &parsed);
    ASSERT_TRUE(status.ok()) << "iter " << iter << ": " << line;
    EXPECT_EQ(parsed, original) << "iter " << iter << ": " << line;
  }
}

TEST(JsonFuzzTest, NumbersAndLiteralsRoundTripAsText) {
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    const double value =
        (rng.NextDouble() - 0.5) * std::pow(10.0, rng.NextInt(-6, 6));
    const std::string line = "{\"n\":" + json::Number(value) +
                             ",\"t\":true,\"f\":false,\"z\":null}";
    std::map<std::string, std::string> parsed;
    ASSERT_TRUE(json::ParseFlatObject(line, &parsed).ok()) << line;
    EXPECT_EQ(parsed["n"], json::Number(value));
    EXPECT_EQ(parsed["t"], "true");
    EXPECT_EQ(parsed["f"], "false");
    EXPECT_EQ(parsed["z"], "");
  }
}

TEST(JsonFuzzTest, EveryTruncationOfAValidObjectIsHandled) {
  const std::string full =
      "{\"id\":\"x\\\"y\",\"left\":\"caf\xc3\xa9 \\u0041\",\"n\":-12.5e3,"
      "\"ok\":true,\"nil\":null}";
  std::map<std::string, std::string> parsed;
  ASSERT_TRUE(json::ParseFlatObject(full, &parsed).ok());
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::map<std::string, std::string> fields;
    // Must return (any status) without crashing; a strict prefix of a
    // flat object is never itself valid.
    Status status = json::ParseFlatObject(full.substr(0, cut), &fields);
    EXPECT_FALSE(status.ok()) << "prefix length " << cut;
  }
}

TEST(JsonFuzzTest, DeepNestingIsRejectedWithoutRecursionBlowup) {
  // 100k levels would overflow any recursive-descent stack; the flat
  // grammar rejects the first nested opener instead.
  for (const char open : {'{', '['}) {
    std::string deep = "{\"a\":";
    deep.append(100000, open);
    std::map<std::string, std::string> fields;
    Status status = json::ParseFlatObject(deep, &fields);
    EXPECT_FALSE(status.ok()) << "nesting with '" << open << "'";
  }
}

TEST(JsonFuzzTest, BrokenEscapesAreTypedErrorsNotReads) {
  const std::vector<std::string> cases = {
      "{\"a\":\"\\",          // trailing backslash at end of input
      "{\"a\":\"\\q\"}",      // unknown escape
      "{\"a\":\"\\u\"}",      // \u with no digits
      "{\"a\":\"\\u12\"}",    // \u cut short
      "{\"a\":\"\\u12zz\"}",  // \u with non-hex
      "{\"a\\",               // escape broken inside a key
      "{\"a\":\"b\"",         // missing closing brace
      "{\"a\" \"b\"}",        // missing colon
      "{:\"b\"}",             // missing key
      "{\"a\":}",             // missing value
      "{\"a\":\"b\",}",       // trailing comma
      "{\"a\":tru}",          // broken literal
      "{\"a\":5..5}",         // malformed number (strtod leaves a tail)
      "{\"a\":1e}",           // exponent with no digits
  };
  for (const std::string& text : cases) {
    std::map<std::string, std::string> fields;
    EXPECT_FALSE(json::ParseFlatObject(text, &fields).ok()) << text;
  }
}

TEST(JsonFuzzTest, RandomGarbageNeverCrashesTheParser) {
  Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    const int len = rng.NextInt(0, 128);
    std::string garbage;
    garbage.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    // Bias half the cases toward almost-JSON so the parser gets past the
    // opening brace and into the token machinery.
    if (iter % 2 == 0) garbage = "{\"k\":" + garbage;
    std::map<std::string, std::string> fields;
    json::ParseFlatObject(garbage, &fields);  // any status; just no UB
  }
  SUCCEED();
}

TEST(JsonFuzzTest, MutatedValidObjectsNeverCrashTheParser) {
  Rng rng(4242);
  const std::string base =
      "{\"id\":\"r1\",\"left\":\"jabra evolve 80\",\"right\":\"widget\","
      "\"p\":0.93,\"hit\":false,\"v\":null}";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = base;
    const int flips = rng.NextInt(1, 4);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(
          static_cast<uint32_t>(mutated.size()));
      mutated[pos] = static_cast<char>(rng.NextBounded(256));
    }
    std::map<std::string, std::string> fields;
    Status status = json::ParseFlatObject(mutated, &fields);
    if (status.ok()) {
      // A surviving mutation must still have produced sane fields (a couple
      // of byte flips cannot mint many new key/value pairs).
      EXPECT_LE(fields.size(), 9u) << mutated;
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace tailormatch
