#include "util/status.h"

#include <gtest/gtest.h>

namespace tailormatch {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::IoError("disk on fire");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "disk on fire");
  EXPECT_EQ(status.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("hello"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "hello");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> result(Status::Internal("bad"));
  EXPECT_DEATH((void)result.value(), "Internal");
}

Status Fails() { return Status::InvalidArgument("inner"); }

Status Propagates() {
  TM_RETURN_IF_ERROR(Fails());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status status = Propagates();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "inner");
}

}  // namespace
}  // namespace tailormatch
