#include "util/thread_pool.h"

#include <atomic>

#include <gtest/gtest.h>

namespace tailormatch {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(50);
  ThreadPool::ParallelFor(50, 4, [&hits](size_t i) {
    hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSingleThreadFallback) {
  std::vector<int> order;
  ThreadPool::ParallelFor(5, 1, [&order](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForZeroItems) {
  bool called = false;
  ThreadPool::ParallelFor(0, 4, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace tailormatch
