#include "util/logging.h"

#include <gtest/gtest.h>

namespace tailormatch {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  TM_LOG(Debug) << "below threshold " << 42 << " " << 3.14;
  TM_LOG(Info) << "also below threshold";
  SetLogLevel(original);
}

TEST(LoggingTest, StreamsArbitraryTypes) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // keep test output clean
  TM_LOG(Warning) << "string " << std::string("value") << " int " << 7
                  << " double " << 2.5 << " bool " << true;
  SetLogLevel(original);
}

}  // namespace
}  // namespace tailormatch
