#include "util/logging.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tailormatch {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  TM_LOG(Debug) << "below threshold " << 42 << " " << 3.14;
  TM_LOG(Info) << "also below threshold";
  SetLogLevel(original);
}

TEST(LoggingTest, StreamsArbitraryTypes) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // keep test output clean
  TM_LOG(Warning) << "string " << std::string("value") << " int " << 7
                  << " double " << 2.5 << " bool " << true;
  SetLogLevel(original);
}

TEST(LoggingTest, LogEveryNCompilesAsSingleStatement) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // keep test output clean
  // The macro must be usable as the sole statement of an unbraced if —
  // the dangling-else shape that breaks naive macro expansions.
  for (int i = 0; i < 10; ++i)
    if (i % 2 == 0)
      TM_LOG_EVERY_N(Info, 3) << "hit " << i;
    else
      TM_LOG_EVERY_N(Warning, 3) << "odd " << i;
  SetLogLevel(original);
}

TEST(LoggingTest, LogEveryNSideEffectsFollowSamplingPattern) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output; sampling still runs
  // Streamed expressions evaluate only on sampled hits (1st, (n+1)th, ...),
  // so a side-effecting argument counts which iterations were selected.
  int evaluations = 0;
  for (int i = 0; i < 10; ++i) {
    TM_LOG_EVERY_N(Info, 4) << ++evaluations;
  }
  // Hits 1, 5, and 9 are sampled -> 3 evaluations.
  EXPECT_EQ(evaluations, 3);
  SetLogLevel(original);
}

TEST(LoggingTest, LogEveryNIsThreadSafe) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        TM_LOG_EVERY_N(Info, 100) << "worker message " << i;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  SetLogLevel(original);
}

}  // namespace
}  // namespace tailormatch
