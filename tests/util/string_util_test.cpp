#include "util/string_util.h"

#include <gtest/gtest.h>

namespace tailormatch {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrips) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("Jabra EVOLVE 80"), "jabra evolve 80");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("##piece", "##"));
  EXPECT_FALSE(StartsWith("#piece", "##"));
  EXPECT_TRUE(EndsWith("model.ckpt", ".ckpt"));
  EXPECT_FALSE(EndsWith("ckpt", ".ckpt"));
}

TEST(StringUtilTest, Contains) {
  EXPECT_TRUE(Contains("the answer is yes", "yes"));
  EXPECT_FALSE(Contains("nope", "yes"));
}

TEST(StringUtilTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("The Answer Is YES.", "yes"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
  EXPECT_FALSE(ContainsIgnoreCase("ye", "yes"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "up"), "7-up");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%+.2f", -1.5), "-1.50");
}

}  // namespace
}  // namespace tailormatch
