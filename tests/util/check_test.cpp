#include "util/check.h"

#include <gtest/gtest.h>

namespace tailormatch {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  TM_CHECK(true) << "never shown";
  TM_CHECK_EQ(1, 1);
  TM_CHECK_LT(1, 2);
  TM_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(TM_CHECK(false) << "boom", "TM_CHECK failed.*boom");
}

TEST(CheckDeathTest, FailingComparisonAborts) {
  EXPECT_DEATH(TM_CHECK_EQ(1, 2), "TM_CHECK failed");
}

TEST(CheckDeathTest, FatalAborts) {
  EXPECT_DEATH(TM_FATAL() << "unreachable", "unreachable");
}

}  // namespace
}  // namespace tailormatch
