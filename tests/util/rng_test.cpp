#include "util/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace tailormatch {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int value = rng.NextInt(-2, 3);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 3);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(6);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(7);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(9);
  std::vector<size_t> sample = rng.SampleIndices(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t index : sample) EXPECT_LT(index, 100u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(10);
  Rng child = parent.Fork(1);
  Rng parent2(10);
  Rng child2 = parent2.Fork(1);
  EXPECT_EQ(child.NextU64(), child2.NextU64());  // deterministic fork
  Rng other = parent.Fork(2);
  EXPECT_NE(child.NextU64(), other.NextU64());
}

TEST(RngTest, ChoiceReturnsElementFromVector) {
  Rng rng(11);
  std::vector<int> items = {5, 6, 7};
  for (int i = 0; i < 50; ++i) {
    const int value = rng.Choice(items);
    EXPECT_TRUE(value == 5 || value == 6 || value == 7);
  }
}

}  // namespace
}  // namespace tailormatch
