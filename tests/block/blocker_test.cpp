#include "block/blocker.h"

#include <gtest/gtest.h>

#include "data/generator.h"

namespace tailormatch::block {
namespace {

// A catalog where each product appears twice with different surfaces.
std::vector<data::Entity> DuplicatedCatalog(int num_products, uint64_t seed) {
  data::ProductGenerator generator((data::ProductGeneratorConfig()));
  Rng rng(seed);
  std::vector<data::Entity> records;
  for (int i = 0; i < num_products; ++i) {
    data::Entity base = generator.SampleBase(rng);
    records.push_back(generator.RenderVariant(base, 0.15, rng));
    records.push_back(generator.RenderVariant(base, 0.45, rng));
  }
  rng.Shuffle(records);
  return records;
}

class BlockerImplTest
    : public ::testing::TestWithParam<std::shared_ptr<Blocker>> {};

TEST_P(BlockerImplTest, WithinFindsMostTruePairsAndReduces) {
  std::vector<data::Entity> records = DuplicatedCatalog(60, 5);
  std::vector<CandidatePair> candidates =
      GetParam()->CandidatesWithin(records);
  BlockingQuality quality = EvaluateBlockingWithin(records, candidates);
  EXPECT_GT(quality.pair_completeness, 0.7);
  EXPECT_GT(quality.reduction_ratio, 0.5);
  for (const CandidatePair& pair : candidates) {
    EXPECT_LT(pair.left, pair.right);  // canonical within-pairs
    EXPECT_GE(pair.left, 0);
    EXPECT_LT(pair.right, static_cast<int>(records.size()));
  }
}

TEST_P(BlockerImplTest, AcrossFindsLinkedRecords) {
  data::ProductGenerator generator((data::ProductGeneratorConfig()));
  Rng rng(6);
  std::vector<data::Entity> left, right;
  for (int i = 0; i < 50; ++i) {
    data::Entity base = generator.SampleBase(rng);
    left.push_back(generator.RenderVariant(base, 0.15, rng));
    right.push_back(generator.RenderVariant(base, 0.4, rng));
  }
  rng.Shuffle(right);
  std::vector<CandidatePair> candidates =
      GetParam()->CandidatesAcross(left, right);
  BlockingQuality quality = EvaluateBlockingAcross(left, right, candidates);
  EXPECT_EQ(quality.true_pairs, 50u);
  EXPECT_GT(quality.pair_completeness, 0.7);
  EXPECT_GT(quality.reduction_ratio, 0.5);
}

TEST_P(BlockerImplTest, NoDuplicateCandidates) {
  std::vector<data::Entity> records = DuplicatedCatalog(30, 7);
  std::vector<CandidatePair> candidates =
      GetParam()->CandidatesWithin(records);
  std::set<std::pair<int, int>> unique;
  for (const CandidatePair& pair : candidates) {
    EXPECT_TRUE(unique.emplace(pair.left, pair.right).second)
        << pair.left << "," << pair.right;
  }
}

TEST_P(BlockerImplTest, EmptyInputs) {
  std::vector<data::Entity> empty;
  EXPECT_TRUE(GetParam()->CandidatesWithin(empty).empty());
  EXPECT_TRUE(GetParam()->CandidatesAcross(empty, empty).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Blockers, BlockerImplTest,
    ::testing::Values(std::make_shared<TokenBlocker>(),
                      std::make_shared<SortedNeighborhoodBlocker>(8),
                      std::make_shared<TfidfKnnBlocker>(6)),
    [](const ::testing::TestParamInfo<std::shared_ptr<Blocker>>& info) {
      switch (info.index) {
        case 0:
          return std::string("Token");
        case 1:
          return std::string("SortedNeighborhood");
        default:
          return std::string("TfidfKnn");
      }
    });

TEST(TokenBlockerTest, FrequentTokensIgnored) {
  // All records share the token "common"; it must not pair everything.
  std::vector<data::Entity> records;
  for (int i = 0; i < 30; ++i) {
    data::Entity entity;
    entity.entity_id = static_cast<uint64_t>(i);
    entity.surface = "common brandless item " + std::to_string(10000 + i * 7);
    records.push_back(entity);
  }
  TokenBlocker::Config config;
  config.max_token_frequency = 10;
  config.min_shared_tokens = 1;
  TokenBlocker blocker(config);
  std::vector<CandidatePair> candidates = blocker.CandidatesWithin(records);
  // "common"/"brandless"/"item" all exceed the frequency cap; the numbers
  // are unique -> no candidates at all.
  EXPECT_TRUE(candidates.empty());
}

TEST(SortedNeighborhoodTest, SortKeyIsOrderInvariant) {
  data::Entity a, b;
  a.surface = "jabra evolve 80 stereo";
  b.surface = "stereo 80 evolve jabra";
  EXPECT_EQ(SortedNeighborhoodBlocker::SortKey(a),
            SortedNeighborhoodBlocker::SortKey(b));
}

TEST(BlockingQualityTest, PerfectBlockerScoresOne) {
  std::vector<data::Entity> records = DuplicatedCatalog(10, 8);
  // All pairs as candidates: completeness 1, reduction 0.
  std::vector<CandidatePair> all;
  for (int i = 0; i < static_cast<int>(records.size()); ++i) {
    for (int j = i + 1; j < static_cast<int>(records.size()); ++j) {
      all.push_back({i, j});
    }
  }
  BlockingQuality quality = EvaluateBlockingWithin(records, all);
  EXPECT_DOUBLE_EQ(quality.pair_completeness, 1.0);
  EXPECT_NEAR(quality.reduction_ratio, 0.0, 1e-9);
}

}  // namespace
}  // namespace tailormatch::block
