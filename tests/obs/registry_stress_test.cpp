// Multi-threaded stress test for the metrics registry. Runs in the tier-1
// suite and is the primary target of -DTM_SANITIZE=thread builds.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/string_util.h"

namespace tailormatch::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 2000;

TEST(RegistryStressTest, ConcurrentMixedAccessIsConsistent) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &ready, &go] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      MetricsRegistry& reg = MetricsRegistry::Global();
      Counter& shared = reg.GetCounter("stress.shared");
      Counter& mine = reg.GetCounter(StrFormat("stress.thread.%d", t));
      Gauge& gauge = reg.GetGauge("stress.gauge");
      Histogram& hist = reg.GetHistogram("stress.hist");
      for (int i = 0; i < kIterations; ++i) {
        shared.Increment();
        mine.Increment();
        gauge.Set(static_cast<double>(i));
        hist.Record(static_cast<double>(i % 100) + 0.5);
        TM_SPAN("stress_span");
        if (i % 500 == 0) {
          // Concurrent snapshots while other threads mutate.
          const MetricsSnapshot snap = reg.Snapshot();
          EXPECT_GE(snap.counters.size(), 1u);
        }
      }
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (std::thread& th : threads) th.join();

  const MetricsSnapshot snapshot = registry.Snapshot();
  const int64_t expected_total =
      static_cast<int64_t>(kThreads) * kIterations;

  EXPECT_EQ(registry.GetCounter("stress.shared").value(), expected_total);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter(StrFormat("stress.thread.%d", t)).value(),
              kIterations);
  }
  Histogram& hist = registry.GetHistogram("stress.hist");
  EXPECT_EQ(hist.count(), expected_total);
  EXPECT_DOUBLE_EQ(hist.min(), 0.5);
  EXPECT_DOUBLE_EQ(hist.max(), 99.5);

  const SpanNode* span = snapshot.FindSpan("stress_span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, expected_total);

  // The gauge holds whichever thread wrote last; any value in range is fine.
  const double gauge_value = registry.GetGauge("stress.gauge").value();
  EXPECT_GE(gauge_value, 0.0);
  EXPECT_LT(gauge_value, kIterations);
}

TEST(RegistryStressTest, ConcurrentCreationOfManyMetrics) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      // All threads race to create the same 64 names; each name must
      // resolve to exactly one counter.
      for (int i = 0; i < 64; ++i) {
        reg.GetCounter(StrFormat("create.%d", i)).Increment();
      }
    });
  }
  for (std::thread& th : threads) th.join();

  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(registry.GetCounter(StrFormat("create.%d", i)).value(),
              kThreads);
  }
}

}  // namespace
}  // namespace tailormatch::obs
