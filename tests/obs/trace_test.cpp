#include "obs/trace.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"

namespace tailormatch::obs {
namespace {

// Explicit test trace ids sit far above the dense NewTraceId counter so they
// can never collide with ids handed out elsewhere in this binary.
constexpr uint64_t kTestId = (uint64_t{1} << 40) + 7;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().Enable();
  }
  void TearDown() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
};

std::vector<TraceEvent> EventsFor(uint64_t trace_id) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : TraceRecorder::Global().Collect()) {
    if (event.trace_id == trace_id) out.push_back(event);
  }
  return out;
}

TEST_F(TraceTest, RecordedEventRoundTripsThroughCollect) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Record(kTestId, TraceEventKind::kEnqueue, /*arg=*/3);
  recorder.Record(kTestId, TraceEventKind::kReply, /*arg=*/0,
                  /*dur_ns=*/1234);

  const std::vector<TraceEvent> events = EventsFor(kTestId);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kEnqueue);
  EXPECT_EQ(events[0].arg, 3u);
  EXPECT_EQ(events[1].kind, TraceEventKind::kReply);
  EXPECT_EQ(events[1].dur_ns, 1234u);
  // Collect sorts by the global seq counter: record order is preserved.
  EXPECT_LT(events[0].seq, events[1].seq);
}

TEST_F(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Disable();
  recorder.Record(kTestId + 1, TraceEventKind::kMark);
  recorder.Enable();
  EXPECT_TRUE(EventsFor(kTestId + 1).empty());
}

TEST_F(TraceTest, ClearEmptiesEveryRing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Record(kTestId, TraceEventKind::kMark);
  ASSERT_FALSE(recorder.Collect().empty());
  recorder.Clear();
  EXPECT_TRUE(recorder.Collect().empty());
}

TEST_F(TraceTest, NewTraceIdsAreUniqueAndIncreasing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  const uint64_t a = recorder.NewTraceId();
  const uint64_t b = recorder.NewTraceId();
  EXPECT_LT(a, b);
  // The counter stays dense, far below the explicit-test-id range.
  EXPECT_LT(b, uint64_t{1} << 40);
}

TEST_F(TraceTest, RingOverwriteKeepsTheNewestEvents) {
  TraceRecorder& recorder = TraceRecorder::Global();
  const size_t previous_capacity = recorder.ring_capacity();
  recorder.set_ring_capacity(64);
  const int64_t overwritten_before = recorder.overwritten();

  // Capacity applies to threads registering after the call, so record from
  // a fresh thread.
  std::thread writer([&recorder] {
    for (uint64_t i = 0; i < 200; ++i) {
      recorder.Record(kTestId + 2, TraceEventKind::kMark, /*arg=*/i);
    }
  });
  writer.join();
  recorder.set_ring_capacity(previous_capacity);

  const std::vector<TraceEvent> events = EventsFor(kTestId + 2);
  ASSERT_EQ(events.size(), 64u);
  // The survivors are exactly the newest 64 (args 136..199, in order).
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, 136 + i);
  }
  EXPECT_GE(recorder.overwritten() - overwritten_before, 136);
}

TEST_F(TraceTest, RingCapacityIsClampedToAPowerOfTwo) {
  TraceRecorder& recorder = TraceRecorder::Global();
  const size_t previous_capacity = recorder.ring_capacity();
  recorder.set_ring_capacity(0);
  EXPECT_EQ(recorder.ring_capacity(), 64u);  // floor
  recorder.set_ring_capacity(100);
  EXPECT_EQ(recorder.ring_capacity(), 128u);  // rounded up
  recorder.set_ring_capacity(size_t{1} << 30);
  EXPECT_EQ(recorder.ring_capacity(), size_t{1} << 20);  // ceiling
  recorder.set_ring_capacity(previous_capacity);
}

TEST_F(TraceTest, LabelsInternToStableIds) {
  TraceRecorder& recorder = TraceRecorder::Global();
  const uint32_t id = recorder.InternLabel("trace_test_label");
  ASSERT_GE(id, 1u);
  EXPECT_EQ(recorder.InternLabel("trace_test_label"), id);
  EXPECT_STREQ(recorder.LabelName(id), "trace_test_label");
  EXPECT_STREQ(recorder.LabelName(0), "");
  EXPECT_STREQ(recorder.LabelName(100000), "");
  EXPECT_NE(recorder.InternLabel("trace_test_other"), id);
}

TEST_F(TraceTest, TraceScopeNestsAndRestores) {
  EXPECT_EQ(CurrentTraceId(), 0u);
  {
    TraceScope outer(kTestId);
    EXPECT_EQ(CurrentTraceId(), kTestId);
    {
      TraceScope inner(kTestId + 3);
      EXPECT_EQ(CurrentTraceId(), kTestId + 3);
    }
    EXPECT_EQ(CurrentTraceId(), kTestId);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST_F(TraceTest, ScopedTraceEventRecordsDurationUnderAmbientId) {
  {
    TraceScope scope(kTestId + 4);
    ScopedTraceEvent event(TraceEventKind::kForward, /*label=*/0, /*arg=*/9);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::vector<TraceEvent> events = EventsFor(kTestId + 4);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kForward);
  EXPECT_EQ(events[0].arg, 9u);
  EXPECT_GE(events[0].dur_ns, uint64_t{1000000});  // slept >= 1ms
}

TEST_F(TraceTest, TraceStageMacroRecordsALabeledStage) {
  {
    TraceScope scope(kTestId + 5);
    TM_TRACE_STAGE("trace_test_stage");
  }
  const std::vector<TraceEvent> events = EventsFor(kTestId + 5);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kStage);
  EXPECT_STREQ(TraceRecorder::Global().LabelName(events[0].label),
               "trace_test_stage");
}

// Pulls every "{...}" out of the export. Event objects are flat by design
// (no nested braces), so a linear scan is exact; the scan skips the
// enclosing top-level object by starting at the traceEvents array.
std::vector<std::string> ExtractEventObjects(const std::string& chrome_json) {
  std::vector<std::string> objects;
  const size_t array_begin = chrome_json.find('[');
  const size_t array_end = chrome_json.rfind(']');
  EXPECT_NE(array_begin, std::string::npos);
  for (size_t i = array_begin; i < array_end; ++i) {
    if (chrome_json[i] != '{') continue;
    const size_t end = chrome_json.find('}', i);
    EXPECT_NE(end, std::string::npos);
    objects.push_back(chrome_json.substr(i, end - i + 1));
    i = end;
  }
  return objects;
}

TEST_F(TraceTest, ChromeJsonEventsAreFlatAndRoundTripThroughUtilJson) {
  TraceRecorder& recorder = TraceRecorder::Global();
  const uint64_t id = kTestId + 6;
  recorder.Record(id, TraceEventKind::kEnqueue, /*arg=*/1);
  recorder.Record(id, TraceEventKind::kForward, /*arg=*/4,
                  /*dur_ns=*/2500);
  recorder.Record(id, TraceEventKind::kReply);

  const std::string chrome = recorder.ToChromeJson();
  EXPECT_EQ(chrome.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(chrome.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  int async_begin = 0, async_end = 0, durations = 0, instants = 0;
  const std::string want_id =
      std::to_string(static_cast<unsigned long long>(id));
  for (const std::string& object : ExtractEventObjects(chrome)) {
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(json::ParseFlatObject(object, &fields).ok()) << object;
    for (const char* key : {"name", "cat", "pid", "tid", "ts", "id", "ph"}) {
      EXPECT_EQ(fields.count(key), 1u) << key << " missing in " << object;
    }
    // 64-bit trace ids must survive verbatim (decimal, not %.9g).
    EXPECT_EQ(fields["id"], want_id) << object;
    if (fields["ph"] == "b") ++async_begin;
    if (fields["ph"] == "e") ++async_end;
    if (fields["ph"] == "X") {
      ++durations;
      EXPECT_EQ(fields.count("dur"), 1u) << object;
    }
    if (fields["ph"] == "i") ++instants;
  }
  // One request lifeline (enqueue "b" ... reply "e"), one duration event
  // (the forward), two instants (enqueue + reply themselves).
  EXPECT_EQ(async_begin, 1);
  EXPECT_EQ(async_end, 1);
  EXPECT_EQ(durations, 1);
  EXPECT_EQ(instants, 2);
}

TEST_F(TraceTest, WriteChromeTraceWritesTheExportToDisk) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Record(kTestId + 7, TraceEventKind::kMark);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("tm_trace_test_" + std::to_string(::getpid()) + ".json"))
          .string();
  ASSERT_TRUE(recorder.WriteChromeTrace(path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents.find("{\"traceEvents\":["), 0u);
  std::filesystem::remove(path);

  EXPECT_FALSE(recorder.WriteChromeTrace("/nonexistent_dir/trace.json").ok());
}

TEST_F(TraceTest, FlightJsonIsParseablePerEvent) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Record(kTestId + 8, TraceEventKind::kEnqueue, /*arg=*/2);
  recorder.Record(kTestId + 8, TraceEventKind::kReply);

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("tm_flight_test_" + std::to_string(::getpid()) + ".json"))
          .string();
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  ASSERT_GE(fd, 0);
  const size_t written = recorder.WriteFlightJson(fd, "unit_test");
  ::close(fd);
  EXPECT_GE(written, 2u);

  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::filesystem::remove(path);
  EXPECT_EQ(contents.find("{\"reason\":\"unit_test\",\"events\":["), 0u);

  // Every event line is itself a flat JSON object.
  size_t parsed = 0;
  std::istringstream lines(contents);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '{' || line.find("\"seq\"") == std::string::npos) {
      continue;
    }
    if (!line.empty() && line.back() == ',') line.pop_back();
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(json::ParseFlatObject(line, &fields).ok()) << line;
    EXPECT_EQ(fields.count("trace_id"), 1u);
    EXPECT_EQ(fields.count("kind"), 1u);
    ++parsed;
  }
  EXPECT_GE(parsed, 2u);
}

TEST_F(TraceTest, CollectMergesThreadsInSeqOrder) {
  TraceRecorder& recorder = TraceRecorder::Global();
  const uint64_t id = kTestId + 9;
  recorder.Record(id, TraceEventKind::kMark, /*arg=*/0);
  std::thread other(
      [&recorder, id] { recorder.Record(id, TraceEventKind::kMark, 1); });
  other.join();
  recorder.Record(id, TraceEventKind::kMark, /*arg=*/2);

  const std::vector<TraceEvent> events = EventsFor(id);
  ASSERT_EQ(events.size(), 3u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, i);  // wall-clock record order, across threads
  }
  EXPECT_NE(events[1].tid, events[0].tid);
}

}  // namespace
}  // namespace tailormatch::obs
