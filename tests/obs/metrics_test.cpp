#include "obs/metrics.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tailormatch::obs {
namespace {

TEST(CounterTest, IncrementsMonotonically) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Counter& counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  EXPECT_EQ(counter.value(), 1);
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  // Same name resolves to the same counter.
  registry.GetCounter("test.counter").Increment();
  EXPECT_EQ(counter.value(), 43);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Gauge& gauge = registry.GetGauge("test.gauge");
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.Set(0.25);  // last write wins
  EXPECT_DOUBLE_EQ(gauge.value(), 0.25);
}

TEST(HistogramTest, CountSumMinMax) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Histogram& hist = registry.GetHistogram("test.hist");
  EXPECT_EQ(hist.count(), 0);
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max(), 0.0);
  hist.Record(2.0);
  hist.Record(8.0);
  hist.Record(5.0);
  EXPECT_EQ(hist.count(), 3);
  EXPECT_DOUBLE_EQ(hist.sum(), 15.0);
  EXPECT_DOUBLE_EQ(hist.min(), 2.0);
  EXPECT_DOUBLE_EQ(hist.max(), 8.0);
}

TEST(HistogramTest, PercentilesOnKnownUniformDistribution) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  // Unit-width buckets (0,1], (1,2], ..., (99,100]: percentile
  // interpolation is exact for integer samples 1..100.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  Histogram& hist = registry.GetHistogram("test.uniform", bounds);
  for (int v = 1; v <= 100; ++v) hist.Record(static_cast<double>(v));
  EXPECT_NEAR(hist.Percentile(50.0), 50.0, 1e-9);
  EXPECT_NEAR(hist.Percentile(95.0), 95.0, 1e-9);
  EXPECT_NEAR(hist.Percentile(99.0), 99.0, 1e-9);
  EXPECT_NEAR(hist.Percentile(100.0), 100.0, 1e-9);
  // p0 clamps to the observed minimum.
  EXPECT_GE(hist.Percentile(0.0), 1.0);
}

TEST(HistogramTest, EmptyHistogramPercentilesAreZero) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Histogram& hist = registry.GetHistogram("test.empty");
  // No samples: every percentile is 0, never a bucket bound or -inf/inf
  // leaking out of the uninitialized min/max.
  for (double pct : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(hist.Percentile(pct), 0.0) << "p" << pct;
  }
}

TEST(HistogramTest, SingleSamplePercentilesAreTheSample) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Histogram& hist = registry.GetHistogram("test.single");
  hist.Record(3.7);
  // One sample: the sample itself, not an interpolated bucket position.
  for (double pct : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(hist.Percentile(pct), 3.7) << "p" << pct;
  }
}

TEST(BucketPercentileTest, SharedHelperHandlesDegenerateTotals) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  const std::vector<int64_t> empty = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(BucketPercentile(bounds, empty, 0, 99.0, 0.0, 0.0), 0.0);
  const std::vector<int64_t> one = {0, 1, 0, 0};
  EXPECT_DOUBLE_EQ(BucketPercentile(bounds, one, 1, 50.0, 1.5, 1.5), 1.5);
}

TEST(HistogramTest, PercentilesWithDefaultLatencyBoundsStayNearSamples) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Histogram& hist = registry.GetHistogram("test.latency");
  for (int i = 0; i < 1000; ++i) hist.Record(1.0);
  // All mass in one bucket; interpolation is clamped to [min, max].
  EXPECT_DOUBLE_EQ(hist.Percentile(50.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(99.0), 1.0);
}

TEST(HistogramTest, OverflowBucketUsesObservedMax) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Histogram& hist = registry.GetHistogram("test.overflow", {1.0, 2.0});
  hist.Record(1e9);  // beyond the last bound
  EXPECT_DOUBLE_EQ(hist.Percentile(50.0), 1e9);
  EXPECT_DOUBLE_EQ(hist.max(), 1e9);
}

TEST(HistogramTest, ExponentialBoundsAreGeometric) {
  const std::vector<double> bounds = Histogram::ExponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(SnapshotTest, ContainsAllMetricKinds) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  registry.GetCounter("snap.counter").Increment(7);
  registry.GetGauge("snap.gauge").Set(1.25);
  registry.GetHistogram("snap.hist").Record(3.0);
  registry.RecordSpan("snap.span", 0.5);

  const MetricsSnapshot snapshot = registry.Snapshot();
  bool counter_found = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "snap.counter") {
      counter_found = true;
      EXPECT_EQ(value, 7);
    }
  }
  EXPECT_TRUE(counter_found);
  bool hist_found = false;
  for (const HistogramStats& h : snapshot.histograms) {
    if (h.name == "snap.hist") {
      hist_found = true;
      EXPECT_EQ(h.count, 1);
      EXPECT_DOUBLE_EQ(h.min, 3.0);
    }
  }
  EXPECT_TRUE(hist_found);
  const SpanNode* span = snapshot.FindSpan("snap.span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 1);
  EXPECT_DOUBLE_EQ(span->total_seconds, 0.5);
}

TEST(SnapshotTest, ToJsonIsWellFormed) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  registry.GetCounter("json.counter").Increment(3);
  registry.GetGauge("json.gauge").Set(0.5);
  registry.GetHistogram("json.hist").Record(1.0);
  registry.RecordSpan("json.outer", 1.0);
  registry.RecordSpan("json.outer.inner", 0.25);

  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"json.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"json.outer.inner\""), std::string::npos);
  // Balanced braces and brackets (no string values contain them here).
  int braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(RegistryTest, ResetZeroesButKeepsReferencesValid) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Counter& counter = registry.GetCounter("reset.counter");
  Histogram& hist = registry.GetHistogram("reset.hist");
  counter.Increment(5);
  hist.Record(1.0);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(hist.count(), 0);
  counter.Increment();  // reference still usable after Reset
  EXPECT_EQ(counter.value(), 1);
  hist.Record(2.0);
  EXPECT_DOUBLE_EQ(hist.min(), 2.0);
}

}  // namespace
}  // namespace tailormatch::obs
