#include "obs/window.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tailormatch::obs {
namespace {

// Unit-width bucket bounds 1..100: percentile interpolation is exact for
// integer samples 1..100 (same trick as the cumulative Histogram test).
std::vector<double> UnitBounds() {
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  return bounds;
}

TEST(WindowedHistogramTest, EmptyWindowIsAllZero) {
  WindowedHistogram hist;
  const WindowStats stats = hist.StatsOverAtSecond(10, 100);
  EXPECT_EQ(stats.window_seconds, 10);
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.p50, 0.0);
  EXPECT_DOUBLE_EQ(stats.p99, 0.0);
  EXPECT_DOUBLE_EQ(stats.rate, 0.0);
  EXPECT_DOUBLE_EQ(hist.RateEwmaAtSecond(100), 0.0);
}

TEST(WindowedHistogramTest, SingleSampleWindowReportsTheSample) {
  WindowedHistogram hist;
  hist.RecordAtSecond(7.25, 100);
  const WindowStats stats = hist.StatsOverAtSecond(1, 100);
  EXPECT_EQ(stats.count, 1);
  EXPECT_DOUBLE_EQ(stats.sum, 7.25);
  EXPECT_DOUBLE_EQ(stats.min, 7.25);
  EXPECT_DOUBLE_EQ(stats.max, 7.25);
  // Single sample: every percentile is the sample itself, not a bucket edge.
  EXPECT_DOUBLE_EQ(stats.p50, 7.25);
  EXPECT_DOUBLE_EQ(stats.p99, 7.25);
  EXPECT_DOUBLE_EQ(stats.rate, 1.0);
}

TEST(WindowedHistogramTest, WindowsForgetOldSeconds) {
  WindowedHistogram hist;
  hist.RecordAtSecond(5.0, 100);
  EXPECT_EQ(hist.StatsOverAtSecond(1, 100).count, 1);
  // Two seconds later the 1s window is empty but the 10s window still sees
  // the sample.
  EXPECT_EQ(hist.StatsOverAtSecond(1, 102).count, 0);
  EXPECT_EQ(hist.StatsOverAtSecond(10, 102).count, 1);
  // Once second 100 falls out of even the 60s window, nothing remains.
  EXPECT_EQ(hist.StatsOverAtSecond(60, 161).count, 0);
}

TEST(WindowedHistogramTest, PercentilesMergeAcrossSlices) {
  WindowedHistogram hist(UnitBounds());
  // Samples 1..100 spread over four consecutive seconds (recorded in
  // second order: the AtSecond clock must not regress).
  for (int phase = 0; phase < 4; ++phase) {
    for (int v = 1; v <= 100; ++v) {
      if (v % 4 == phase) hist.RecordAtSecond(static_cast<double>(v),
                                              200 + phase);
    }
  }
  const WindowStats stats = hist.StatsOverAtSecond(10, 203);
  EXPECT_EQ(stats.count, 100);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  EXPECT_NEAR(stats.p50, 50.0, 1e-9);
  EXPECT_NEAR(stats.p95, 95.0, 1e-9);
  EXPECT_NEAR(stats.p99, 99.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.rate, 10.0);  // 100 events / 10s window
  // The narrowest window only sees its own second's samples.
  EXPECT_EQ(hist.StatsOverAtSecond(1, 203).count, 25);
}

TEST(WindowedHistogramTest, RingOverwritesSlicesOlderThanSixtySeconds) {
  WindowedHistogram hist;
  hist.RecordAtSecond(1.0, 100);
  // Second 160 maps to the same ring slot as 100 and must evict it.
  hist.RecordAtSecond(2.0, 160);
  const WindowStats stats = hist.StatsOverAtSecond(60, 160);
  EXPECT_EQ(stats.count, 1);
  EXPECT_DOUBLE_EQ(stats.max, 2.0);
}

TEST(WindowedHistogramTest, RegressedTimestampsAreDroppedNotCorrupting) {
  WindowedHistogram hist;
  hist.RecordAtSecond(1.0, 100);
  hist.RecordAtSecond(9.0, 99);  // time went backwards: dropped
  EXPECT_EQ(hist.StatsOverAtSecond(10, 100).count, 1);
  EXPECT_DOUBLE_EQ(hist.StatsOverAtSecond(10, 100).max, 1.0);
}

TEST(WindowedHistogramTest, EwmaConvergesToSteadyRateAndDecaysWhenIdle) {
  WindowedHistogram hist;
  for (int64_t sec = 300; sec < 340; ++sec) {
    for (int i = 0; i < 5; ++i) hist.RecordAtSecond(1.0, sec);
  }
  // A constant 5/s stream reads back as exactly 5/s (the first fold seeds
  // the EWMA, later folds are fixed points).
  EXPECT_NEAR(hist.RateEwmaAtSecond(340), 5.0, 1e-9);
  // 60 idle seconds decay it by e^-6.
  EXPECT_NEAR(hist.RateEwmaAtSecond(400), 5.0 * std::exp(-6.0), 1e-6);
}

TEST(WindowedHistogramTest, ResetForgetsEverything) {
  WindowedHistogram hist;
  for (int i = 0; i < 10; ++i) hist.RecordAtSecond(3.0, 500);
  ASSERT_EQ(hist.StatsOverAtSecond(1, 500).count, 10);
  hist.Reset();
  EXPECT_EQ(hist.StatsOverAtSecond(60, 500).count, 0);
  EXPECT_DOUBLE_EQ(hist.RateEwmaAtSecond(501), 0.0);
}

int64_t CounterValue(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name).value();
}

TEST(SloTrackerTest, P99BreachIsCountedOncePerEvaluation) {
  SloConfig config;
  config.p99_ms = 10.0;
  config.window_seconds = 10;
  config.min_requests = 5;
  SloTracker slo("slotest.p99", config);

  for (int i = 0; i < 20; ++i) {
    slo.RecordRequestAtSecond(/*latency_ms=*/50.0, /*error=*/false, 1000);
  }
  EXPECT_TRUE(slo.MaybeEvaluateAtSecond(1000));
  EXPECT_EQ(CounterValue("slotest.p99.evaluations"), 1);
  EXPECT_EQ(CounterValue("slotest.p99.p99_breaches"), 1);
  EXPECT_EQ(CounterValue("slotest.p99.error_breaches"), 0);
  EXPECT_NEAR(MetricsRegistry::Global().GetGauge("slotest.p99.last_p99_ms")
                  .value(),
              50.0, 1e-9);

  // Throttled: at most one judgement per second.
  EXPECT_FALSE(slo.MaybeEvaluateAtSecond(1000));
  EXPECT_TRUE(slo.MaybeEvaluateAtSecond(1001));
  EXPECT_EQ(CounterValue("slotest.p99.evaluations"), 2);
  EXPECT_EQ(CounterValue("slotest.p99.p99_breaches"), 2);
}

TEST(SloTrackerTest, ErrorRateBudgetBreaches) {
  SloConfig config;
  config.max_error_rate = 0.1;
  config.min_requests = 5;
  SloTracker slo("slotest.err", config);

  for (int i = 0; i < 20; ++i) {
    slo.RecordRequestAtSecond(1.0, /*error=*/i < 5, 2000);
  }
  EXPECT_TRUE(slo.MaybeEvaluateAtSecond(2000));
  EXPECT_EQ(CounterValue("slotest.err.error_breaches"), 1);
  EXPECT_EQ(CounterValue("slotest.err.p99_breaches"), 0);  // budget disabled
  EXPECT_NEAR(MetricsRegistry::Global()
                  .GetGauge("slotest.err.last_error_rate")
                  .value(),
              0.25, 1e-9);
}

TEST(SloTrackerTest, WithinBudgetEvaluationsDoNotBreach) {
  SloConfig config;
  config.p99_ms = 100.0;
  config.max_error_rate = 0.5;
  config.min_requests = 5;
  SloTracker slo("slotest.ok", config);
  for (int i = 0; i < 30; ++i) {
    slo.RecordRequestAtSecond(2.0, /*error=*/false, 3000);
  }
  EXPECT_TRUE(slo.MaybeEvaluateAtSecond(3000));
  EXPECT_EQ(CounterValue("slotest.ok.evaluations"), 1);
  EXPECT_EQ(CounterValue("slotest.ok.p99_breaches"), 0);
  EXPECT_EQ(CounterValue("slotest.ok.error_breaches"), 0);
}

TEST(SloTrackerTest, ThinWindowsAreNotJudged) {
  SloConfig config;
  config.p99_ms = 1.0;
  config.min_requests = 50;
  SloTracker slo("slotest.thin", config);
  for (int i = 0; i < 10; ++i) {
    slo.RecordRequestAtSecond(99.0, /*error=*/true, 4000);
  }
  EXPECT_FALSE(slo.MaybeEvaluateAtSecond(4000));
  EXPECT_EQ(CounterValue("slotest.thin.evaluations"), 0);
  EXPECT_EQ(CounterValue("slotest.thin.p99_breaches"), 0);
}

TEST(SloTrackerTest, DisabledBudgetsNeverEvaluateButCountersExist) {
  SloTracker slo("slotest.off", SloConfig{});
  for (int i = 0; i < 100; ++i) {
    slo.RecordRequestAtSecond(1000.0, /*error=*/true, 5000);
  }
  EXPECT_FALSE(slo.MaybeEvaluateAtSecond(5000));
  // The series exist at zero so dashboards never see a gap.
  EXPECT_EQ(CounterValue("slotest.off.evaluations"), 0);
  EXPECT_EQ(CounterValue("slotest.off.p99_breaches"), 0);
  EXPECT_EQ(CounterValue("slotest.off.error_breaches"), 0);
}

TEST(MetricsRegistryWindowTest, SnapshotExportsWindowedStats) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  WindowedHistogram& window = registry.GetWindowed("wintest.latency");
  // Live-clock seconds: whatever "now" is, both the 10s and 60s windows
  // cover samples recorded this instant.
  for (int i = 0; i < 8; ++i) window.Record(4.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const WindowedHistogramStats* stats = snapshot.FindWindow("wintest.latency");
  ASSERT_NE(stats, nullptr);
  ASSERT_EQ(stats->windows.size(), 3u);
  EXPECT_EQ(stats->windows[0].window_seconds, 1);
  EXPECT_EQ(stats->windows[1].window_seconds, 10);
  EXPECT_EQ(stats->windows[2].window_seconds, 60);
  EXPECT_EQ(stats->windows[1].count, 8);
  EXPECT_EQ(stats->windows[2].count, 8);

  const std::string encoded = snapshot.ToJson();
  EXPECT_NE(encoded.find("\"wintest.latency\":{\"rate_ewma\":"),
            std::string::npos);
  EXPECT_NE(encoded.find("\"w10s\":{\"count\":8"), std::string::npos);

  registry.Reset();
  EXPECT_EQ(registry.GetWindowed("wintest.latency").StatsOver(60).count, 0);
}

}  // namespace
}  // namespace tailormatch::obs
