#include "obs/span.h"

#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tailormatch::obs {
namespace {

TEST(SpanTest, SingleSpanRecordsUnderItsName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  { TM_SPAN("solo"); }
  const MetricsSnapshot snapshot = registry.Snapshot();
  const SpanNode* node = snapshot.FindSpan("solo");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, 1);
  EXPECT_GE(node->total_seconds, 0.0);
}

TEST(SpanTest, NestedSpansBuildDottedPaths) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  {
    TM_SPAN("outer");
    {
      TM_SPAN("inner");
      { TM_SPAN("leaf"); }
    }
  }
  const MetricsSnapshot snapshot = registry.Snapshot();
  const SpanNode* outer = snapshot.FindSpan("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1);
  ASSERT_EQ(outer->children.size(), 1u);
  EXPECT_EQ(outer->children[0].path, "outer.inner");
  const SpanNode* leaf = snapshot.FindSpan("outer.inner.leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 1);
  // Children finish before parents, so the parent total covers them.
  const SpanNode* inner = snapshot.FindSpan("outer.inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(outer->total_seconds, inner->total_seconds);
  EXPECT_GE(inner->total_seconds, leaf->total_seconds);
}

TEST(SpanTest, RepeatedSpansAccumulate) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  for (int i = 0; i < 5; ++i) {
    TM_SPAN("repeat");
  }
  const MetricsSnapshot snapshot = registry.Snapshot();
  const SpanNode* node = snapshot.FindSpan("repeat");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, 5);
  EXPECT_LE(node->min_seconds, node->max_seconds);
  EXPECT_GE(node->total_seconds, node->max_seconds);
}

TEST(SpanTest, DottedNameCreatesIntermediateNode) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  { TM_SPAN("batch_matcher.match_all"); }
  const MetricsSnapshot snapshot = registry.Snapshot();
  const SpanNode* parent = snapshot.FindSpan("batch_matcher");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->count, 0);  // prefix-only node, never timed itself
  const SpanNode* leaf = snapshot.FindSpan("batch_matcher.match_all");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 1);
}

TEST(SpanTest, ThreadsHaveIndependentStacks) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  TM_SPAN("main_thread");
  std::thread worker([] {
    // A fresh thread starts with an empty span stack, so this is a root
    // span, not a child of "main_thread".
    TM_SPAN("worker_thread");
  });
  worker.join();
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_NE(snapshot.FindSpan("worker_thread"), nullptr);
  EXPECT_EQ(snapshot.FindSpan("main_thread.worker_thread"), nullptr);
}

TEST(SpanTest, ScopedSpanExposesPath) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  ScopedSpan outer("a");
  ScopedSpan inner("b");
  EXPECT_EQ(outer.path(), "a");
  EXPECT_EQ(inner.path(), "a.b");
}

TEST(SpanTest, FindSpanReturnsNullForUnknownPath) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  { TM_SPAN("known"); }
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.FindSpan("unknown"), nullptr);
  EXPECT_EQ(snapshot.FindSpan("known.child"), nullptr);
}

}  // namespace
}  // namespace tailormatch::obs
