#include "cascade/dedup.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>

#include "../fault/tiny_model.h"
#include "cascade/union_find.h"
#include "data/corpus_stream.h"
#include "obs/metrics.h"

namespace tailormatch::cascade {
namespace {

TEST(UnionFindTest, MergesAndCounts) {
  UnionFind sets(6);
  EXPECT_EQ(sets.num_components(), 6u);
  EXPECT_TRUE(sets.Union(0, 1));
  EXPECT_TRUE(sets.Union(1, 2));
  EXPECT_FALSE(sets.Union(0, 2));  // already connected
  EXPECT_TRUE(sets.Union(4, 5));
  EXPECT_EQ(sets.num_components(), 3u);
  EXPECT_TRUE(sets.Connected(0, 2));
  EXPECT_FALSE(sets.Connected(0, 3));
  EXPECT_FALSE(sets.Connected(2, 4));
}

TEST(UnionFindTest, ClustersAreSortedAndDeterministic) {
  UnionFind sets(7);
  sets.Union(5, 2);
  sets.Union(2, 6);
  sets.Union(1, 3);
  std::vector<std::vector<int>> clusters = sets.Clusters(2);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<int>{1, 3}));
  EXPECT_EQ(clusters[1], (std::vector<int>{2, 5, 6}));
  EXPECT_EQ(sets.Clusters(1).size(), 4u);  // plus singletons 0 and 4
}

TEST(UnionFindTest, TransitiveClosureOfChain) {
  constexpr int kN = 100;
  UnionFind sets(kN);
  for (int i = 0; i + 1 < kN; ++i) sets.Union(i, i + 1);
  EXPECT_EQ(sets.num_components(), 1u);
  EXPECT_TRUE(sets.Connected(0, kN - 1));
}

data::CorpusStreamConfig StreamConfig(size_t n) {
  data::CorpusStreamConfig config;
  config.num_entities = n;
  config.seed = 4242;
  return config;
}

DedupOptions FastOptions() {
  DedupOptions options;
  options.chunk_size = 512;
  options.num_threads = 4;
  options.k = 8;
  return options;
}

TEST(DedupPipelineTest, NoLlmRunRecoversDuplicates) {
  data::CorpusStream stream(StreamConfig(3000));
  DedupPipeline pipeline(FastOptions(), /*model=*/nullptr);
  Result<DedupReport> result = pipeline.Run(stream);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DedupReport& report = result.value();

  EXPECT_EQ(report.num_records, 3000u);
  EXPECT_GT(report.true_pairs, 0u);
  EXPECT_GT(report.candidate_pairs, 0u);
  // Blocking keeps nearly all true pairs at this scale.
  EXPECT_GE(report.candidate_recall, 0.95);
  // Band accounting is exhaustive.
  EXPECT_EQ(report.confident_match + report.confident_non_match +
                report.uncertain,
            report.candidate_pairs);
  // Without a model nothing is escalated; everything uncertain falls back.
  EXPECT_EQ(report.escalated, 0u);
  EXPECT_EQ(report.truncated, report.uncertain);
  EXPECT_EQ(report.llm_calls_per_entity, 0.0);
  // The cheap cascade alone already clusters most duplicates correctly.
  EXPECT_GE(report.pair_recall, 0.7);
  EXPECT_GE(report.pair_precision, 0.7);
  EXPECT_GT(report.clusters, 0u);
  // Every stage reported a wall time.
  for (const char* stage : {"ingest", "embed", "index", "candidates",
                            "calibrate", "score", "escalate", "cluster"}) {
    EXPECT_TRUE(report.stage_ms.count(stage)) << stage;
  }
}

TEST(DedupPipelineTest, BudgetCapsLlmUsage) {
  llm::SimLlm model = fault_test::MakeTinyModel();
  DedupOptions options = FastOptions();
  options.llm_budget_per_entity = 0.02;
  options.llm_batch_size = 16;

  const auto before = obs::MetricsRegistry::Global().Snapshot();
  const auto* batch_before = before.FindHistogram("sim_llm.batch_size");
  const double sum_before = batch_before == nullptr ? 0.0 : batch_before->sum;

  data::CorpusStream stream(StreamConfig(1500));
  DedupPipeline pipeline(options, &model);
  Result<DedupReport> result = pipeline.Run(stream);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DedupReport& report = result.value();

  EXPECT_EQ(report.llm_budget, 30u);  // floor(0.02 * 1500)
  EXPECT_GT(report.uncertain, report.llm_budget);  // budget actually binds
  EXPECT_EQ(report.escalated, report.llm_budget);
  EXPECT_EQ(report.truncated, report.uncertain - report.escalated);
  EXPECT_LE(report.llm_calls_per_entity, options.llm_budget_per_entity);

  // The model-side histogram confirms exactly `escalated` prompts were
  // dispatched — the budget is enforced at the LLM boundary, not just in
  // the report.
  const auto after = obs::MetricsRegistry::Global().Snapshot();
  const auto* batch_after = after.FindHistogram("sim_llm.batch_size");
  ASSERT_NE(batch_after, nullptr);
  EXPECT_EQ(batch_after->sum - sum_before,
            static_cast<double>(report.escalated));
}

class DedupResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("tm_dedup_test_") + std::to_string(getpid()) + "_" +
             info->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
};

TEST_F(DedupResumeTest, ResumesMidEscalationWithoutRespendingBudget) {
  llm::SimLlm model = fault_test::MakeTinyModel();
  DedupOptions options = FastOptions();
  options.llm_budget_per_entity = 0.05;
  options.llm_batch_size = 8;
  options.work_dir = dir_;

  // Reference: one uninterrupted run without a journal.
  DedupOptions reference_options = options;
  reference_options.work_dir.clear();
  data::CorpusStream reference_stream(StreamConfig(1200));
  Result<DedupReport> reference =
      DedupPipeline(reference_options, &model).Run(reference_stream);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference.value().escalated, 16u);  // several batches

  // First attempt dies after two live LLM batches.
  DedupOptions crash_options = options;
  crash_options.max_llm_batches = 2;
  data::CorpusStream crash_stream(StreamConfig(1200));
  Result<DedupReport> crashed =
      DedupPipeline(crash_options, &model).Run(crash_stream);
  ASSERT_FALSE(crashed.ok());

  // The retry answers the first two batches from the journal and only pays
  // for the remainder.
  const auto before = obs::MetricsRegistry::Global().Snapshot();
  const auto* batch_before = before.FindHistogram("sim_llm.batch_size");
  const double sum_before = batch_before == nullptr ? 0.0 : batch_before->sum;

  data::CorpusStream resume_stream(StreamConfig(1200));
  Result<DedupReport> resumed =
      DedupPipeline(options, &model).Run(resume_stream);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed.value().resumed);
  EXPECT_EQ(resumed.value().resumed_batches, 2u);

  const auto after = obs::MetricsRegistry::Global().Snapshot();
  const auto* batch_after = after.FindHistogram("sim_llm.batch_size");
  ASSERT_NE(batch_after, nullptr);
  EXPECT_EQ(batch_after->sum - sum_before,
            static_cast<double>(resumed.value().escalated - 16));

  // The resumed run lands on the exact same answer as the uninterrupted one.
  const DedupReport& a = reference.value();
  const DedupReport& b = resumed.value();
  EXPECT_EQ(a.candidate_pairs, b.candidate_pairs);
  EXPECT_EQ(a.escalated, b.escalated);
  EXPECT_EQ(a.matched_pairs, b.matched_pairs);
  EXPECT_EQ(a.clusters, b.clusters);
  EXPECT_EQ(a.correct_pairs, b.correct_pairs);
  EXPECT_EQ(a.pair_recall, b.pair_recall);
}

TEST_F(DedupResumeTest, StageSeamCrashThenCleanResume) {
  DedupOptions options = FastOptions();
  options.work_dir = dir_;
  options.stop_after_stage = "candidates";
  data::CorpusStream crash_stream(StreamConfig(800));
  Result<DedupReport> crashed =
      DedupPipeline(options, nullptr).Run(crash_stream);
  ASSERT_FALSE(crashed.ok());

  options.stop_after_stage.clear();
  data::CorpusStream resume_stream(StreamConfig(800));
  Result<DedupReport> resumed =
      DedupPipeline(options, nullptr).Run(resume_stream);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed.value().resumed);
  EXPECT_GT(resumed.value().clusters, 0u);
}

TEST_F(DedupResumeTest, JournalFromDifferentCorpusIsRejected) {
  DedupOptions options = FastOptions();
  options.work_dir = dir_;
  data::CorpusStream first_stream(StreamConfig(500));
  ASSERT_TRUE(DedupPipeline(options, nullptr).Run(first_stream).ok());

  data::CorpusStream other_stream(StreamConfig(600));
  Result<DedupReport> mismatched =
      DedupPipeline(options, nullptr).Run(other_stream);
  ASSERT_FALSE(mismatched.ok());
}

TEST(DedupPipelineTest, DeterministicAcrossThreadCounts) {
  DedupOptions one_thread = FastOptions();
  one_thread.num_threads = 1;
  DedupOptions many_threads = FastOptions();
  many_threads.num_threads = 8;

  data::CorpusStream stream_a(StreamConfig(1000));
  data::CorpusStream stream_b(StreamConfig(1000));
  Result<DedupReport> a = DedupPipeline(one_thread, nullptr).Run(stream_a);
  Result<DedupReport> b = DedupPipeline(many_threads, nullptr).Run(stream_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().candidate_pairs, b.value().candidate_pairs);
  EXPECT_EQ(a.value().confident_match, b.value().confident_match);
  EXPECT_EQ(a.value().uncertain, b.value().uncertain);
  EXPECT_EQ(a.value().matched_pairs, b.value().matched_pairs);
  EXPECT_EQ(a.value().clusters, b.value().clusters);
  EXPECT_EQ(a.value().correct_pairs, b.value().correct_pairs);
}

}  // namespace
}  // namespace tailormatch::cascade
