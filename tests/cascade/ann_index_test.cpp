#include "cascade/ann_index.h"

#include <gtest/gtest.h>

#include <set>

#include "data/corpus_stream.h"
#include "text/tfidf.h"

namespace tailormatch::cascade {
namespace {

struct EmbeddedCorpus {
  std::vector<std::string> surfaces;
  text::TfidfEmbedder embedder;
  std::vector<text::SparseVector> vectors;
};

EmbeddedCorpus MakeCorpus(size_t n, uint64_t seed = 9) {
  EmbeddedCorpus corpus;
  data::CorpusStreamConfig config;
  config.num_entities = n;
  config.seed = seed;
  data::CorpusStream stream(config);
  data::Entity entity;
  while (stream.Next(&entity)) corpus.surfaces.push_back(entity.surface);
  corpus.embedder.Fit(corpus.surfaces);
  for (const std::string& surface : corpus.surfaces) {
    corpus.vectors.push_back(corpus.embedder.Embed(surface));
  }
  return corpus;
}

CascadeIndexOptions ExactOptions() {
  CascadeIndexOptions options;
  options.max_posting_length = 0;  // no pruning: exhaustive candidates
  options.max_df_fraction = 1.0;
  options.lsh_tables = 0;
  return options;
}

TEST(CascadeIndexTest, ExactModeMatchesNearestNeighborIndex) {
  EmbeddedCorpus corpus = MakeCorpus(300);
  CascadeIndex index(ExactOptions());
  index.Build(&corpus.vectors);

  text::NearestNeighborIndex reference(&corpus.embedder);
  reference.AddAll(corpus.surfaces);
  for (size_t i = 0; i < corpus.surfaces.size(); i += 13) {
    std::vector<int> expected =
        reference.Query(corpus.surfaces[i], 5, static_cast<int>(i));
    // NearestNeighborIndex pads with zero-score docs; CascadeIndex only
    // returns positive-cosine neighbours, so compare the scored prefix.
    std::vector<CascadeIndex::Neighbor> actual =
        index.Query(static_cast<int>(i), 5);
    ASSERT_LE(actual.size(), expected.size());
    for (size_t j = 0; j < actual.size(); ++j) {
      EXPECT_EQ(actual[j].doc, expected[j]) << "query " << i << " rank " << j;
    }
  }
}

TEST(CascadeIndexTest, AnnRecallFloorAgainstExactKnn) {
  EmbeddedCorpus corpus = MakeCorpus(2000);
  CascadeIndex exact(ExactOptions());
  exact.Build(&corpus.vectors, 4);

  CascadeIndexOptions pruned_options;  // defaults: pruning + LSH on
  CascadeIndex pruned(pruned_options);
  pruned.Build(&corpus.vectors, 4);
  ASSERT_LT(pruned.num_postings(), exact.num_postings());

  constexpr int kK = 10;
  size_t exact_total = 0, recovered = 0;
  for (size_t i = 0; i < corpus.vectors.size(); i += 3) {
    std::set<int> approx_docs;
    for (const auto& neighbor : pruned.Query(static_cast<int>(i), kK)) {
      approx_docs.insert(neighbor.doc);
    }
    for (const auto& neighbor : exact.Query(static_cast<int>(i), kK)) {
      ++exact_total;
      recovered += approx_docs.count(neighbor.doc);
    }
  }
  ASSERT_GT(exact_total, 0u);
  const double recall =
      static_cast<double>(recovered) / static_cast<double>(exact_total);
  EXPECT_GE(recall, 0.9) << "ANN recall vs exact KNN collapsed";
}

TEST(CascadeIndexTest, BuildDeterministicAcrossThreadCounts) {
  EmbeddedCorpus corpus = MakeCorpus(600);
  CascadeIndex one;
  one.Build(&corpus.vectors, 1);
  CascadeIndex eight;
  eight.Build(&corpus.vectors, 8);
  ASSERT_EQ(one.num_postings(), eight.num_postings());
  for (size_t i = 0; i < corpus.vectors.size(); i += 7) {
    std::vector<CascadeIndex::Neighbor> a = one.Query(static_cast<int>(i), 8);
    std::vector<CascadeIndex::Neighbor> b = eight.Query(static_cast<int>(i), 8);
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].doc, b[j].doc);
      EXPECT_EQ(a[j].score, b[j].score);
    }
  }
}

TEST(CascadeIndexTest, SignaturesAreStablePerTable) {
  EmbeddedCorpus corpus = MakeCorpus(50);
  CascadeIndex index;
  index.Build(&corpus.vectors);
  const text::SparseVector& vector = corpus.vectors[7];
  EXPECT_EQ(index.Signature(vector, 0), index.Signature(vector, 0));
  // Different tables use different hyperplanes; with 14 bits the chance of
  // every table agreeing is negligible.
  bool any_difference = false;
  for (int table = 1; table < index.options().lsh_tables; ++table) {
    if (index.Signature(vector, table) != index.Signature(vector, 0)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(CascadeIndexTest, QueryVectorExcludesAndRanks) {
  EmbeddedCorpus corpus = MakeCorpus(200);
  CascadeIndex index;
  index.Build(&corpus.vectors, 2);
  std::vector<CascadeIndex::Neighbor> with_self =
      index.QueryVector(corpus.vectors[4], 3);
  ASSERT_FALSE(with_self.empty());
  EXPECT_EQ(with_self[0].doc, 4);  // self cosine is 1.0
  std::vector<CascadeIndex::Neighbor> without_self =
      index.QueryVector(corpus.vectors[4], 3, /*exclude=*/4);
  for (const auto& neighbor : without_self) EXPECT_NE(neighbor.doc, 4);
  // Scores are sorted descending.
  for (size_t j = 1; j < without_self.size(); ++j) {
    EXPECT_GE(without_self[j - 1].score, without_self[j].score);
  }
}

}  // namespace
}  // namespace tailormatch::cascade
