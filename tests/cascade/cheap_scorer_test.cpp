#include "cascade/cheap_scorer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/corpus_stream.h"
#include "text/tfidf.h"
#include "util/rng.h"

namespace tailormatch::cascade {
namespace {

TEST(DocProfileTest, ExtractsSortedUniqueTokenHashes) {
  DocProfile profile = MakeDocProfile("acme X9-500 widget acme 2021");
  EXPECT_TRUE(std::is_sorted(profile.tokens.begin(), profile.tokens.end()));
  EXPECT_TRUE(std::adjacent_find(profile.tokens.begin(), profile.tokens.end()) ==
              profile.tokens.end());
  EXPECT_FALSE(profile.digit_tokens.empty());
  EXPECT_LT(profile.digit_tokens.size(), profile.tokens.size());
  EXPECT_GT(profile.num_tokens, 0);
}

TEST(PairFeaturesTest, IdenticalSurfacesScoreMaximal) {
  DocProfile profile = MakeDocProfile("jabra evolve 65 headset");
  PairFeatures features = ComputeFeatures(1.0, profile, profile);
  for (double value : features.values) EXPECT_DOUBLE_EQ(value, 1.0);
}

TEST(PairFeaturesTest, AllFeaturesStayInUnitInterval) {
  const char* surfaces[] = {
      "jabra evolve 65 headset", "totally unrelated garden hose 12m",
      "jabra evolve 75 headset", "", "x", "12 34 56"};
  for (const char* a : surfaces) {
    for (const char* b : surfaces) {
      PairFeatures features =
          ComputeFeatures(0.3, MakeDocProfile(a), MakeDocProfile(b));
      for (double value : features.values) {
        EXPECT_GE(value, 0.0);
        EXPECT_LE(value, 1.0);
      }
    }
  }
}

TEST(PairFeaturesTest, DigitJaccardSeparatesSiblings) {
  DocProfile base = MakeDocProfile("acme powerdrill pd-730 kit");
  DocProfile duplicate = MakeDocProfile("acme powerdrill pd-730");
  DocProfile sibling = MakeDocProfile("acme powerdrill pd-1130 kit");
  PairFeatures dup_features = ComputeFeatures(0.9, base, duplicate);
  PairFeatures sib_features = ComputeFeatures(0.9, base, sibling);
  EXPECT_GT(dup_features.values[2], sib_features.values[2]);
}

// Builds a labelled training set from the synthetic corpus: candidate-like
// pairs labelled by entity_id equality.
std::vector<CheapScorer::TrainPair> LabelledPairs(size_t num_entities) {
  data::CorpusStreamConfig config;
  config.num_entities = num_entities;
  config.seed = 33;
  config.duplicate_rate = 0.45;
  config.window = 16;  // duplicates stay close -> the "prev" pairs find them
  data::CorpusStream stream(config);
  std::vector<data::Entity> records;
  data::Entity entity;
  while (stream.Next(&entity)) records.push_back(entity);

  std::vector<std::string> surfaces;
  for (const auto& record : records) surfaces.push_back(record.surface);
  text::TfidfEmbedder embedder;
  embedder.Fit(surfaces);
  std::vector<text::SparseVector> vectors;
  std::vector<DocProfile> profiles;
  for (const std::string& surface : surfaces) {
    vectors.push_back(embedder.Embed(surface));
    profiles.push_back(MakeDocProfile(surface));
  }

  std::vector<CheapScorer::TrainPair> pairs;
  Rng rng(5);
  for (size_t i = 1; i < records.size(); ++i) {
    // One nearby pair (often a duplicate) and one random pair per record.
    const size_t prev = i - 1 - rng.NextBounded(static_cast<uint32_t>(
                                    std::min<size_t>(i, 16)));
    const size_t random = rng.NextBounded(static_cast<uint32_t>(i));
    for (size_t j : {prev, random}) {
      CheapScorer::TrainPair pair;
      pair.features = ComputeFeatures(
          text::TfidfEmbedder::Cosine(vectors[i], vectors[j]), profiles[i],
          profiles[j]);
      pair.label = records[i].entity_id == records[j].entity_id;
      pairs.push_back(pair);
    }
  }
  return pairs;
}

TEST(CheapScorerTest, CalibrationIsMonotoneInTheLogit) {
  std::vector<CheapScorer::TrainPair> pairs = LabelledPairs(800);
  CheapScorer scorer;
  scorer.Fit(pairs);
  ASSERT_TRUE(scorer.fitted());
  // Platt scaling must preserve the model's ranking: a positive slope.
  EXPECT_GT(scorer.platt_a(), 0.0);
  // Spot-check monotonicity end to end: higher logit -> higher score.
  std::vector<std::pair<double, double>> pointwise;
  for (const auto& pair : pairs) {
    pointwise.emplace_back(scorer.Logit(pair.features),
                           scorer.Score(pair.features));
  }
  std::sort(pointwise.begin(), pointwise.end());
  for (size_t i = 1; i < pointwise.size(); ++i) {
    EXPECT_GE(pointwise[i].second, pointwise[i - 1].second);
  }
}

TEST(CheapScorerTest, SeparatesDuplicatesFromNonDuplicates) {
  std::vector<CheapScorer::TrainPair> pairs = LabelledPairs(800);
  CheapScorer scorer;
  scorer.Fit(pairs);
  double positive_sum = 0.0, negative_sum = 0.0;
  size_t positives = 0, negatives = 0;
  for (const auto& pair : pairs) {
    const double score = scorer.Score(pair.features);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
    if (pair.label) {
      positive_sum += score;
      ++positives;
    } else {
      negative_sum += score;
      ++negatives;
    }
  }
  ASSERT_GT(positives, 0u);
  ASSERT_GT(negatives, 0u);
  // Calibrated probabilities honour the base rate, so assert separation as
  // a ratio plus a modest absolute gap rather than a large absolute margin.
  const double positive_mean = positive_sum / static_cast<double>(positives);
  const double negative_mean = negative_sum / static_cast<double>(negatives);
  EXPECT_GT(positive_mean, 5.0 * negative_mean);
  EXPECT_GT(positive_mean, negative_mean + 0.1);
}

TEST(CheapScorerTest, FitIsDeterministic) {
  std::vector<CheapScorer::TrainPair> pairs = LabelledPairs(400);
  CheapScorer a, b;
  a.Fit(pairs);
  b.Fit(pairs);
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_EQ(a.platt_a(), b.platt_a());
  EXPECT_EQ(a.platt_b(), b.platt_b());
}

}  // namespace
}  // namespace tailormatch::cascade
