#ifndef TAILORMATCH_BENCH_BENCH_COMMON_H_
#define TAILORMATCH_BENCH_BENCH_COMMON_H_

// Shared infrastructure for the table-reproduction harnesses. Each
// bench_table* binary regenerates one table of the paper; absolute F1
// values depend on the simulated substrate (see DESIGN.md), the *shape*
// (who wins, sign of the deltas) is the reproduction target.
//
// Environment knobs (defaults keep a full run tractable on one core):
//   TM_SCALE=0.25   dataset scale (1.0 reproduces Table 1 sizes exactly)
//   TM_EVAL_MAX=700 test subsample cap (0 = full test splits)
//   TM_EPOCHS=0     fine-tuning epochs (0 = the paper's 10)
//   TM_CACHE_DIR    checkpoint cache ("tm_cache")

#include <cstdio>
#include <ctime>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/fine_tuner.h"
#include "eval/table_printer.h"
#include "llm/pretrainer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace tailormatch::bench {

// Lazily pretrained/loaded zero-shot models plus benchmark data, shared by
// all grids in one binary.
class BenchEnvironment {
 public:
  BenchEnvironment()
      : context_(core::ExperimentContext::FromEnv()),
        benchmarks_(context_.data_scale) {}

  const core::ExperimentContext& context() const { return context_; }

  const data::Benchmark& benchmark(data::BenchmarkId id) {
    return benchmarks_.Get(id);
  }

  llm::SimLlm& zero_shot(llm::ModelFamily family) {
    auto it = zero_shots_.find(family);
    if (it == zero_shots_.end()) {
      it = zero_shots_
               .emplace(family,
                        llm::GetZeroShotModel(family, context_.cache_dir))
               .first;
    }
    return *it->second;
  }

  // Evaluates a model on a benchmark's test split.
  double TestF1(const llm::SimLlm& model, data::BenchmarkId id,
                prompt::PromptTemplate tmpl = prompt::PromptTemplate::kDefault) {
    return core::TestF1(model, benchmark(id), context_, tmpl);
  }

  // Zero-shot F1 values, memoized per (family, benchmark, template).
  double ZeroShotF1(llm::ModelFamily family, data::BenchmarkId id) {
    auto key = std::make_pair(family, id);
    auto it = zero_f1_.find(key);
    if (it == zero_f1_.end()) {
      it = zero_f1_.emplace(key, TestF1(zero_shot(family), id)).first;
    }
    return it->second;
  }

  // Fine-tunes (with on-disk memoization) on an explicit training set.
  std::unique_ptr<llm::SimLlm> FineTune(llm::ModelFamily family,
                                        const data::Dataset& train,
                                        const data::Dataset& valid,
                                        const core::FineTuneOptions& options,
                                        const std::string& cache_key) {
    return core::CachedFineTune(context_, llm::GetFamilyProfile(family),
                                zero_shot(family), train, valid, options,
                                cache_key);
  }

  // Standard fine-tuning on a benchmark's own train/valid splits.
  std::unique_ptr<llm::SimLlm> FineTuneOn(llm::ModelFamily family,
                                          data::BenchmarkId id,
                                          const std::string& key_prefix) {
    const data::Benchmark& bench = benchmark(id);
    core::FineTuneOptions options;
    options.valid_max_pairs = context_.valid_max_pairs;
    return FineTune(family, bench.train, bench.valid, options,
                    key_prefix + "_" + data::BenchmarkShortName(id));
  }

 private:
  core::ExperimentContext context_;
  core::BenchmarkCache benchmarks_;
  std::map<llm::ModelFamily, std::unique_ptr<llm::SimLlm>> zero_shots_;
  std::map<std::pair<llm::ModelFamily, data::BenchmarkId>, double> zero_f1_;
};

inline std::string Cell(double f1, double delta, bool with_delta = true) {
  return eval::TablePrinter::ScoreCell(f1, delta, with_delta);
}

inline std::string GainCell(double gain_percent) {
  return StrFormat("%.0f%%", gain_percent);
}

// Stopwatch for progress lines.
class Stopwatch {
 public:
  Stopwatch() : start_(std::time(nullptr)) {}
  long seconds() const { return std::time(nullptr) - start_; }

 private:
  std::time_t start_;
};

inline void PrintHeader(const char* title, const BenchEnvironment& env) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("scale=%.2f eval_max=%d epochs=%s cache=%s\n",
              env.context().data_scale, env.context().eval_max_pairs,
              env.context().epochs_override > 0
                  ? StrFormat("%d", env.context().epochs_override).c_str()
                  : "paper-default(10)",
              env.context().cache_dir.c_str());
  std::printf("================================================================\n");
}

}  // namespace tailormatch::bench

#endif  // TAILORMATCH_BENCH_BENCH_COMMON_H_
