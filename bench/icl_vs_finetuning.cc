// Baseline comparison: zero-shot vs few-shot in-context learning vs LoRA
// fine-tuning. The paper's premise (Section 1) is that prior LLM entity
// matching work relies on prompt engineering and in-context learning; this
// harness quantifies the three regimes on WDC so the fine-tuning deltas of
// Tables 2-5 have their natural baselines.

#include "bench_common.h"
#include "eval/metrics.h"
#include "llm/icl.h"

using namespace tailormatch;

namespace {

double IclF1(bench::BenchEnvironment& env, const llm::SimLlm& model,
             const data::Benchmark& benchmark, int num_demos) {
  llm::InContextMatcher::Config config;
  config.num_demonstrations = num_demos;
  llm::InContextMatcher matcher(&model, benchmark.train.pairs, config);
  eval::ConfusionCounts counts;
  int evaluated = 0;
  for (const data::EntityPair& pair : benchmark.test.pairs) {
    if (env.context().eval_max_pairs > 0 &&
        evaluated >= env.context().eval_max_pairs) {
      break;
    }
    ++evaluated;
    counts.Add(matcher.PredictMatchProbability(pair) > 0.5, pair.label);
  }
  return eval::ComputeMetrics(counts).f1;
}

}  // namespace

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader(
      "Baselines: zero-shot vs in-context learning vs fine-tuning (WDC)",
      env);

  const data::Benchmark& wdc = env.benchmark(data::BenchmarkId::kWdcSmall);
  eval::TablePrinter table({"Model", "Zero-shot", "ICL k=4", "ICL k=10",
                            "LoRA fine-tuned"});
  for (llm::ModelFamily family :
       {llm::ModelFamily::kLlama8B, llm::ModelFamily::kGpt4oMini}) {
    llm::SimLlm& zero_shot = env.zero_shot(family);
    const double zero = env.ZeroShotF1(family, data::BenchmarkId::kWdcSmall);
    const double icl4 = IclF1(env, zero_shot, wdc, 4);
    const double icl10 = IclF1(env, zero_shot, wdc, 10);
    auto tuned = env.FineTuneOn(family, data::BenchmarkId::kWdcSmall, "t2");
    const double fine_tuned =
        env.TestF1(*tuned, data::BenchmarkId::kWdcSmall);
    table.AddRow({llm::ModelFamilyTableName(family), StrFormat("%.2f", zero),
                  StrFormat("%.2f", icl4), StrFormat("%.2f", icl10),
                  StrFormat("%.2f", fine_tuned)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: fine-tuning beats both zero-shot and in-context\n"
      "learning (the paper's motivation for moving beyond ICL). Note the\n"
      "corner-case effect: on the 80%%-corner-case WDC benchmark,\n"
      "nearest-neighbour demonstration voting can fall *below* zero-shot,\n"
      "because surface-similar demonstrations carry opposite labels by\n"
      "construction - the same hardness that defeats PLM-era matchers.\n");
  return 0;
}
