// Reproduces Table 2: F1 scores after standard fine-tuning. Rows are
// model/training-set combinations; columns are the six test sets plus the
// in-domain and cross-domain transfer gains. The small models (Llama 8B,
// GPT-4o-mini) are fine-tuned on every training set; the large models
// (Llama 70B, GPT-4o) only on WDC small, as in the paper.

#include "bench_common.h"

using namespace tailormatch;
using bench::Cell;
using data::BenchmarkId;
using llm::ModelFamily;

namespace {

struct RowResult {
  std::string label;
  std::map<BenchmarkId, double> f1;
  bool has_gains = false;
  double in_domain_gain = 0.0;
  double cross_domain_gain = 0.0;
};

}  // namespace

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader(
      "Table 2: F1 after standard fine-tuning (deltas vs zero-shot)", env);

  const std::vector<BenchmarkId> tests = data::Table2BenchmarkIds();
  const std::vector<ModelFamily> small_models = {ModelFamily::kLlama8B,
                                                 ModelFamily::kGpt4oMini};
  const std::vector<ModelFamily> large_models = {ModelFamily::kLlama70B,
                                                 ModelFamily::kGpt4o};

  eval::TablePrinter table({"Model", "Training set", "A-B", "A-G", "W-A",
                            "WDC", "In-dom Gain", "D-A", "D-S",
                            "Cross Gain"});

  for (ModelFamily family : small_models) {
    bench::Stopwatch watch;
    std::map<BenchmarkId, double> zero;
    for (BenchmarkId id : tests) zero[id] = env.ZeroShotF1(family, id);

    // Fine-tune one model per training set; evaluate each on all tests.
    std::map<BenchmarkId, std::map<BenchmarkId, double>> grid;
    std::map<BenchmarkId, double> specialized;
    for (BenchmarkId train_id : tests) {
      auto model = env.FineTuneOn(family, train_id, "t2");
      for (BenchmarkId test_id : tests) {
        grid[train_id][test_id] = env.TestF1(*model, test_id);
      }
      specialized[train_id] = grid[train_id][train_id];
      TM_LOG(Info) << llm::ModelFamilyTableName(family) << " / "
                   << data::BenchmarkShortName(train_id) << " done ("
                   << watch.seconds() << "s elapsed)";
    }

    // Zero-shot row.
    {
      std::vector<std::string> row = {llm::ModelFamilyTableName(family),
                                      "Zero-shot"};
      for (BenchmarkId id : {BenchmarkId::kAbtBuy, BenchmarkId::kAmazonGoogle,
                             BenchmarkId::kWalmartAmazon,
                             BenchmarkId::kWdcSmall}) {
        row.push_back(Cell(zero[id], 0.0));
      }
      row.push_back("-");
      row.push_back(Cell(zero[BenchmarkId::kDblpAcm], 0.0));
      row.push_back(Cell(zero[BenchmarkId::kDblpScholar], 0.0));
      row.push_back("-");
      table.AddRow(row);
    }
    // One row per training set.
    for (BenchmarkId train_id : tests) {
      std::vector<std::string> row = {llm::ModelFamilyTableName(family),
                                      data::BenchmarkShortName(train_id)};
      for (BenchmarkId id : {BenchmarkId::kAbtBuy, BenchmarkId::kAmazonGoogle,
                             BenchmarkId::kWalmartAmazon,
                             BenchmarkId::kWdcSmall}) {
        row.push_back(Cell(grid[train_id][id], grid[train_id][id] - zero[id]));
      }
      const auto in_targets = core::InDomainTargets(train_id);
      const auto cross_targets = core::CrossDomainTargets(train_id);
      const double in_gain = core::ComputeTransferGain(
          in_targets, grid[train_id], zero, specialized);
      const double cross_gain = core::ComputeTransferGain(
          cross_targets, grid[train_id], zero, specialized);
      const bool product_trained =
          data::BenchmarkDomain(train_id) == data::Domain::kProduct;
      row.push_back(bench::GainCell(product_trained ? in_gain : cross_gain));
      for (BenchmarkId id :
           {BenchmarkId::kDblpAcm, BenchmarkId::kDblpScholar}) {
        row.push_back(Cell(grid[train_id][id], grid[train_id][id] - zero[id]));
      }
      row.push_back(bench::GainCell(product_trained ? cross_gain : in_gain));
      table.AddRow(row);
    }
    table.AddSeparator();
  }

  for (ModelFamily family : large_models) {
    std::map<BenchmarkId, double> zero;
    for (BenchmarkId id : tests) zero[id] = env.ZeroShotF1(family, id);
    auto model = env.FineTuneOn(family, BenchmarkId::kWdcSmall, "t2");
    std::map<BenchmarkId, double> tuned;
    for (BenchmarkId id : tests) tuned[id] = env.TestF1(*model, id);

    std::vector<std::string> zero_row = {llm::ModelFamilyTableName(family),
                                         "Zero-shot"};
    std::vector<std::string> tuned_row = {llm::ModelFamilyTableName(family),
                                          "WDC"};
    for (BenchmarkId id : {BenchmarkId::kAbtBuy, BenchmarkId::kAmazonGoogle,
                           BenchmarkId::kWalmartAmazon,
                           BenchmarkId::kWdcSmall}) {
      zero_row.push_back(Cell(zero[id], 0.0));
      tuned_row.push_back(Cell(tuned[id], tuned[id] - zero[id]));
    }
    zero_row.push_back("-");
    tuned_row.push_back("-");
    for (BenchmarkId id : {BenchmarkId::kDblpAcm, BenchmarkId::kDblpScholar}) {
      zero_row.push_back(Cell(zero[id], 0.0));
      tuned_row.push_back(Cell(tuned[id], tuned[id] - zero[id]));
    }
    zero_row.push_back("-");
    tuned_row.push_back("-");
    table.AddRow(zero_row);
    table.AddRow(tuned_row);
    table.AddSeparator();
  }

  table.Print();
  std::printf(
      "\nPaper shapes to check: (1) small models gain strongly on their own\n"
      "dataset; (2) in-domain transfer positive for product-trained Llama\n"
      "8B; (3) cross-domain (product->scholar) deltas mostly negative; (4)\n"
      "GPT-4o improves on WDC while Llama 70B gains little or regresses.\n");
  return 0;
}
