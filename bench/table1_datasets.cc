// Reproduces Table 1: dataset statistics for the training, validation, and
// test sets of the eight benchmarks. The "spec" columns are the paper's
// exact sizes; the "built" columns count the pairs actually materialized at
// the configured TM_SCALE (identical at scale 1.0).

#include "bench_common.h"

using namespace tailormatch;

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader("Table 1: dataset statistics (spec = paper, built = "
                     "materialized at TM_SCALE)",
                     env);

  eval::TablePrinter table({"Dataset", "Train #Pos", "Train #Neg",
                            "Valid #Pos", "Valid #Neg", "Test #Pos",
                            "Test #Neg", "Built Train", "Built Test",
                            "Corner %"});
  for (data::BenchmarkId id : data::AllBenchmarkIds()) {
    const data::BenchmarkSpec spec = data::GetBenchmarkSpec(id);
    const data::Benchmark& benchmark = env.benchmark(id);
    const double corner =
        100.0 * benchmark.test.CountCornerCases() / benchmark.test.size();
    table.AddRow({spec.name, StrFormat("%d", spec.train_pos),
                  StrFormat("%d", spec.train_neg),
                  StrFormat("%d", spec.valid_pos),
                  StrFormat("%d", spec.valid_neg),
                  StrFormat("%d", spec.test_pos),
                  StrFormat("%d", spec.test_neg),
                  StrFormat("%d", benchmark.train.size()),
                  StrFormat("%d", benchmark.test.size()),
                  StrFormat("%.0f%%", corner)});
  }
  table.Print();

  std::printf(
      "\nSerialization: product datasets use the title attribute; scholar\n"
      "datasets concatenate author/title/venue/year with semicolons.\n");
  return 0;
}
