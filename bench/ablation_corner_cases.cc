// Ablation: corner-case share. WDC Products is used in its hardest variant
// (80% corner cases, Section 2). This ablation regenerates the benchmark
// at different corner-case fractions and reports zero-shot and fine-tuned
// F1, showing that corner cases are what makes the benchmark hard and what
// fine-tuning learns.

#include "bench_common.h"

using namespace tailormatch;

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader("Ablation: corner-case fraction (Llama 8B, WDC-style)",
                     env);

  eval::TablePrinter table({"Corner fraction", "Zero-shot F1",
                            "Fine-tuned F1", "Fine-tuning gain"});
  for (double fraction : {0.2, 0.5, 0.8}) {
    data::BenchmarkSpec spec =
        data::GetBenchmarkSpec(data::BenchmarkId::kWdcSmall);
    spec.corner_fraction = fraction;
    spec.name = StrFormat("WDC-corner-%.0f%%", 100 * fraction);
    data::Benchmark benchmark =
        data::BuildBenchmark(spec, env.context().data_scale);

    llm::SimLlm& zero_shot = env.zero_shot(llm::ModelFamily::kLlama8B);
    const double zero = core::TestF1(zero_shot, benchmark, env.context());

    core::FineTuner tuner(llm::GetFamilyProfile(llm::ModelFamily::kLlama8B));
    core::FineTuneOptions options;
    options.valid_max_pairs = env.context().valid_max_pairs;
    if (env.context().epochs_override > 0) {
      options.epochs = env.context().epochs_override;
    }
    core::FineTuneResult result =
        tuner.Run(zero_shot, benchmark.train, benchmark.valid, options);
    const double tuned = core::TestF1(*result.model, benchmark, env.context());

    table.AddRow({StrFormat("%.0f%%", 100 * fraction),
                  StrFormat("%.2f", zero), StrFormat("%.2f", tuned),
                  StrFormat("%+.2f", tuned - zero)});
  }
  table.Print();
  std::printf("\nExpected shape: zero-shot F1 falls as the corner-case share\n"
              "rises, while fine-tuning recovers most of the gap.\n");
  return 0;
}
