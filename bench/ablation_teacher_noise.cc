// Ablation: teacher quality vs filtering benefit. Section 5.1's
// error-based filtering assumes the teacher LLM is more accurate than the
// ground-truth noise rate. This ablation sweeps the simulated teacher's
// noise rate and measures (a) how much label noise survives filtering and
// (b) the filtered set's size, showing why filtering helps a weak student
// only when the teacher is strong (the paper's GPT-4o-mini-as-teacher
// setup).

#include "bench_common.h"
#include "select/filters.h"

using namespace tailormatch;

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader("Ablation: teacher noise vs filtering quality", env);

  const data::Benchmark& wdc = env.benchmark(data::BenchmarkId::kWdcSmall);
  auto noise_rate = [](const data::Dataset& dataset) {
    int noisy = 0;
    for (const data::EntityPair& pair : dataset.pairs) {
      if (pair.label != (pair.left.entity_id == pair.right.entity_id)) {
        ++noisy;
      }
    }
    return 100.0 * noisy / std::max(1, dataset.size());
  };

  eval::TablePrinter table({"Teacher noise", "Kept pairs", "Kept share",
                            "Label noise before", "Label noise after"});
  for (double teacher_noise : {0.0, 0.25, 0.5, 0.9}) {
    llm::TeacherLlm::Config config;
    config.noise_rate = teacher_noise;
    config.noise_band = 0.25;
    llm::TeacherLlm teacher(config);
    data::Dataset filtered = select::ErrorBasedFilter(wdc.train, teacher);
    table.AddRow({StrFormat("%.0f%%", 100 * teacher_noise),
                  StrFormat("%d", filtered.size()),
                  StrFormat("%.0f%%",
                            100.0 * filtered.size() / wdc.train.size()),
                  StrFormat("%.1f%%", noise_rate(wdc.train)),
                  StrFormat("%.1f%%", noise_rate(filtered))});
  }
  table.Print();
  std::printf(
      "\nExpected shape: a reliable teacher removes most mislabeled pairs\n"
      "while keeping the set large; as teacher noise grows, filtering\n"
      "discards good pairs and retains bad ones, erasing the Section 5.1\n"
      "benefit.\n");
  return 0;
}
