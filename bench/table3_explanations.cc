// Reproduces Table 3: fine-tuning with different training-example
// representations (Section 4). All models are fine-tuned on WDC small with
// the representation named in the row and evaluated on WDC (no transfer),
// the other product datasets (in-domain transfer), and the scholar
// datasets (cross-domain transfer). Deltas are against standard
// fine-tuning on WDC, as in the paper.

#include "bench_common.h"
#include "explain/explanation.h"

using namespace tailormatch;
using bench::Cell;
using data::BenchmarkId;
using explain::ExplanationStyle;
using llm::ModelFamily;

namespace {

const std::vector<BenchmarkId> kColumns = {
    BenchmarkId::kWdcSmall, BenchmarkId::kAbtBuy, BenchmarkId::kAmazonGoogle,
    BenchmarkId::kWalmartAmazon, BenchmarkId::kDblpAcm,
    BenchmarkId::kDblpScholar};

std::map<BenchmarkId, double> EvaluateAll(bench::BenchEnvironment& env,
                                          const llm::SimLlm& model) {
  std::map<BenchmarkId, double> out;
  for (BenchmarkId id : kColumns) out[id] = env.TestF1(model, id);
  return out;
}

}  // namespace

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader(
      "Table 3: explanation representations (deltas vs standard fine-tuning "
      "on WDC)",
      env);

  eval::TablePrinter table({"Model", "Train set", "WDC", "A-B", "A-G", "W-A",
                            "In-dom Gain", "D-A", "D-S", "Cross Gain"});

  // Specialized per-dataset gains (needed for the transfer-gain columns)
  // come from the standard fine-tuning baselines of Table 2; the cache
  // shares them across bench binaries.
  const std::vector<BenchmarkId> product_targets =
      core::InDomainTargets(BenchmarkId::kWdcSmall);
  const std::vector<BenchmarkId> scholar_targets =
      core::CrossDomainTargets(BenchmarkId::kWdcSmall);

  struct FamilyPlan {
    ModelFamily family;
    std::vector<ExplanationStyle> styles;
  };
  // Structured explanations are exclusively tested on the larger models
  // (Section 4.1).
  const std::vector<FamilyPlan> plans = {
      {ModelFamily::kLlama8B, explain::AllExplanationStyles()},
      {ModelFamily::kGpt4oMini, explain::AllExplanationStyles()},
      {ModelFamily::kLlama70B,
       {ExplanationStyle::kNone, ExplanationStyle::kStructured}},
      {ModelFamily::kGpt4o,
       {ExplanationStyle::kNone, ExplanationStyle::kStructured}},
  };

  for (const FamilyPlan& plan : plans) {
    bench::Stopwatch watch;
    std::map<BenchmarkId, double> zero;
    for (BenchmarkId id : kColumns) zero[id] = env.ZeroShotF1(plan.family, id);

    // Per-dataset specialized models (for transfer-gain denominators).
    std::map<BenchmarkId, double> specialized;
    const bool small_model = plan.family == ModelFamily::kLlama8B ||
                             plan.family == ModelFamily::kGpt4oMini;
    if (small_model) {
      for (BenchmarkId target : product_targets) {
        auto model = env.FineTuneOn(plan.family, target, "t2");
        specialized[target] = env.TestF1(*model, target);
      }
      for (BenchmarkId target : scholar_targets) {
        auto model = env.FineTuneOn(plan.family, target, "t2");
        specialized[target] = env.TestF1(*model, target);
      }
    }

    std::map<ExplanationStyle, std::map<BenchmarkId, double>> results;
    for (ExplanationStyle style : plan.styles) {
      const data::Benchmark& wdc = env.benchmark(BenchmarkId::kWdcSmall);
      core::FineTuneOptions options;
      options.explanation_style = style;
      options.valid_max_pairs = env.context().valid_max_pairs;
      auto model =
          env.FineTune(plan.family, wdc.train, wdc.valid, options,
                       StrFormat("t3_%s", explain::ExplanationStyleName(style)));
      results[style] = EvaluateAll(env, *model);
      TM_LOG(Info) << llm::ModelFamilyTableName(plan.family) << " / "
                   << explain::ExplanationStyleName(style) << " done ("
                   << watch.seconds() << "s elapsed)";
    }
    const std::map<BenchmarkId, double>& baseline =
        results[ExplanationStyle::kNone];

    // Zero-shot row (deltas vs the fine-tuned baseline, as in Table 3).
    {
      std::vector<std::string> row = {llm::ModelFamilyTableName(plan.family),
                                      "Zero-shot"};
      for (BenchmarkId id : kColumns) {
        row.push_back(Cell(zero.at(id), zero.at(id) - baseline.at(id)));
        if (id == BenchmarkId::kWalmartAmazon) row.push_back("-");
      }
      row.push_back("-");
      table.AddRow(row);
    }
    for (ExplanationStyle style : plan.styles) {
      const auto& f1 = results[style];
      std::vector<std::string> row = {llm::ModelFamilyTableName(plan.family),
                                      explain::ExplanationStyleTableName(style)};
      for (BenchmarkId id :
           {BenchmarkId::kWdcSmall, BenchmarkId::kAbtBuy,
            BenchmarkId::kAmazonGoogle, BenchmarkId::kWalmartAmazon}) {
        row.push_back(Cell(f1.at(id), f1.at(id) - baseline.at(id)));
      }
      row.push_back(small_model
                        ? bench::GainCell(core::ComputeTransferGain(
                              product_targets, f1, zero, specialized))
                        : "-");
      for (BenchmarkId id :
           {BenchmarkId::kDblpAcm, BenchmarkId::kDblpScholar}) {
        row.push_back(Cell(f1.at(id), f1.at(id) - baseline.at(id)));
      }
      row.push_back(small_model
                        ? bench::GainCell(core::ComputeTransferGain(
                              scholar_targets, f1, zero, specialized))
                        : "-");
      table.AddRow(row);
    }
    table.AddSeparator();
  }

  table.Print();
  std::printf(
      "\nPaper shapes to check: structured explanations beat standard\n"
      "fine-tuning for three of the four models (GPT-4o being the\n"
      "exception) and improve in-domain generalization; long textual\n"
      "explanations help least.\n");
  return 0;
}
