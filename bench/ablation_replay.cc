// Ablation: pretraining replay for cross-domain generalization — an
// implementation of the paper's stated future work ("develop strategies to
// improve cross-domain generalization"). Mixing a fraction of generic
// pretraining pairs into fine-tuning counteracts the catastrophic
// forgetting behind Table 2's negative product->scholar deltas.

#include "bench_common.h"

using namespace tailormatch;

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader(
      "Ablation: pretraining replay vs cross-domain forgetting (Llama 8B "
      "fine-tuned on WDC)",
      env);

  const data::Benchmark& wdc = env.benchmark(data::BenchmarkId::kWdcSmall);
  const double zero_wdc = env.ZeroShotF1(llm::ModelFamily::kLlama8B,
                                         data::BenchmarkId::kWdcSmall);
  const double zero_ds = env.ZeroShotF1(llm::ModelFamily::kLlama8B,
                                        data::BenchmarkId::kDblpScholar);
  const double zero_da = env.ZeroShotF1(llm::ModelFamily::kLlama8B,
                                        data::BenchmarkId::kDblpAcm);

  eval::TablePrinter table({"Replay fraction", "WDC F1", "D-A F1", "D-S F1",
                            "Cross-domain delta"});
  table.AddRow({"zero-shot", StrFormat("%.2f", zero_wdc),
                StrFormat("%.2f", zero_da), StrFormat("%.2f", zero_ds),
                "-"});
  for (double replay : {0.0, 0.15, 0.4}) {
    core::FineTuner tuner(llm::GetFamilyProfile(llm::ModelFamily::kLlama8B));
    core::FineTuneOptions options;
    options.replay_fraction = replay;
    options.valid_max_pairs = env.context().valid_max_pairs;
    if (env.context().epochs_override > 0) {
      options.epochs = env.context().epochs_override;
    }
    core::FineTuneResult result =
        tuner.Run(env.zero_shot(llm::ModelFamily::kLlama8B), wdc.train,
                  wdc.valid, options);
    const double wdc_f1 =
        env.TestF1(*result.model, data::BenchmarkId::kWdcSmall);
    const double da_f1 = env.TestF1(*result.model, data::BenchmarkId::kDblpAcm);
    const double ds_f1 =
        env.TestF1(*result.model, data::BenchmarkId::kDblpScholar);
    const double cross_delta =
        0.5 * ((da_f1 - zero_da) + (ds_f1 - zero_ds));
    table.AddRow({StrFormat("%.0f%%", 100 * replay),
                  StrFormat("%.2f", wdc_f1), StrFormat("%.2f", da_f1),
                  StrFormat("%.2f", ds_f1), StrFormat("%+.2f", cross_delta)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: replay raises the cross-domain delta toward zero\n"
      "while costing little on the fine-tuning target.\n");
  return 0;
}
