// Reproduces Figures 2-4: the training-example representations. Figure 2
// shows the standard prompt/completion pair, Figure 3 a Wadhwa-style
// textual explanation, Figure 4 a structured explanation. The entity pair
// mirrors the paper's running example (a headset in two shop listings and
// a bike cassette corner case).

#include <cstdio>

#include "bench_common.h"
#include "explain/explanation.h"

using namespace tailormatch;

namespace {

data::EntityPair HeadsetPair() {
  data::EntityPair pair;
  pair.left.domain = data::Domain::kProduct;
  pair.left.entity_id = 1;
  pair.left.category = "audio";
  pair.left.attributes = {{"brand", "jarvo"},    {"line", "evolve"},
                          {"model", "kx-80"},    {"type", "headset"},
                          {"spec", "230 hz"},    {"variant", "ms"},
                          {"sku", "7899-823-109"}};
  pair.left.surface = "jarvo evolve kx-80 ms stereo (7899-823-109)";
  pair.right = pair.left;
  pair.right.attributes[5].value = "uc";
  pair.right.attributes[6].value = "";
  pair.right.surface = "jarvo evolve kx 80 uc stereo headset";
  pair.label = true;
  return pair;
}

data::EntityPair CassettePair() {
  data::EntityPair pair;
  pair.left.domain = data::Domain::kProduct;
  pair.left.entity_id = 2;
  pair.left.category = "bike";
  pair.left.attributes = {{"brand", "sprocketx"}, {"line", "vertex"},
                          {"model", "pg-730"},    {"type", "cassette"},
                          {"spec", "7sp 12-32t"}, {"variant", "pro"},
                          {"sku", "1111-222-333"}};
  pair.left.surface = "sprocketx vertex pg-730 7sp cassette 12-32t";
  pair.right = pair.left;
  pair.right.entity_id = 3;
  pair.right.attributes[2].value = "pg-1130";
  pair.right.attributes[4].value = "11sp 11-36t";
  pair.right.surface = "sprocketx pg 1130 11sp cassette 11-36t";
  pair.label = false;
  return pair;
}

void PrintExample(const char* heading, const data::EntityPair& pair,
                  explain::ExplanationStyle style) {
  explain::ExplanationGenerator generator(style);
  std::printf("--- %s ---\n", heading);
  std::printf("User: %s\n",
              prompt::RenderPrompt(prompt::PromptTemplate::kDefault, pair)
                  .c_str());
  std::printf("AI:   %s\n\n", generator.Generate(pair).text.c_str());
}

}  // namespace

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader("Figures 2-4: training-example representations", env);

  std::printf("\nFigure 2: standard fine-tuning representation\n\n");
  PrintExample("matching pair", HeadsetPair(), explain::ExplanationStyle::kNone);
  PrintExample("non-matching corner case", CassettePair(),
               explain::ExplanationStyle::kNone);

  std::printf("\nFigure 3: textual explanation (Wadhwa et al. style)\n\n");
  PrintExample("matching pair", HeadsetPair(),
               explain::ExplanationStyle::kWadhwa);

  std::printf("\nFigure 4: structured explanation\n\n");
  PrintExample("matching pair", HeadsetPair(),
               explain::ExplanationStyle::kStructured);
  PrintExample("non-matching corner case", CassettePair(),
               explain::ExplanationStyle::kStructured);

  std::printf("\nLong textual explanation (open-ended, ~293 tokens in the "
              "paper)\n\n");
  PrintExample("matching pair", HeadsetPair(),
               explain::ExplanationStyle::kLongTextual);
  return 0;
}
