// Reproduces Table 4: the impact of the filtration and generation methods
// on training-set size (Section 5). Counts scale with TM_SCALE; the paper's
// absolute numbers correspond to scale 1.0.

#include "bench_common.h"
#include "select/filters.h"
#include "select/generation.h"

using namespace tailormatch;

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader(
      "Table 4: training-set sizes after filtration / generation", env);

  const data::Benchmark& wdc = env.benchmark(data::BenchmarkId::kWdcSmall);
  const data::BenchmarkSpec spec =
      data::GetBenchmarkSpec(data::BenchmarkId::kWdcSmall);
  llm::TeacherLlm teacher;

  bench::Stopwatch watch;
  data::Dataset filtered = select::ErrorBasedFilter(wdc.train, teacher);
  data::Dataset filtered_rel = select::RelevancyFilter(filtered, teacher);
  data::Dataset syn = select::BuildSyntheticSet(wdc.train, spec);
  data::Dataset syn_filtered = select::ErrorBasedFilter(syn, teacher);
  data::Dataset syn_filtered_rel = select::RelevancyFilter(syn_filtered, teacher);

  eval::TablePrinter table({"Dataset", "# Pos", "# Neg", "# Total"});
  auto add = [&table](const char* name, const data::Dataset& dataset) {
    table.AddRow({name, StrFormat("%d", dataset.CountPositives()),
                  StrFormat("%d", dataset.CountNegatives()),
                  StrFormat("%d", dataset.size())});
  };
  add("WDC-small", wdc.train);
  add("WDC-filtered", filtered);
  add("WDC-filtered-rel", filtered_rel);
  add("Syn", syn);
  add("Syn-filtered", syn_filtered);
  add("Syn-filtered-rel", syn_filtered_rel);
  table.Print();

  std::printf(
      "\nPaper reference at scale 1.0: 2,500 / 2,006 / 608 / 20,140 /\n"
      "13,824 / 8,900. Shapes to check: error filtering removes a modest\n"
      "share (mislabeled pairs), relevancy filtering shrinks further, the\n"
      "generated Syn set is ~8x the seed set, and filtering discards a\n"
      "larger share of generated pairs than of original ones (the\n"
      "generation methods mislabel matches, Section 5.2).\n"
      "(elapsed %lds)\n",
      watch.seconds());
  return 0;
}
