// Micro-benchmarks (google-benchmark) for the performance-critical
// substrate components: tensor ops, tokenizer, similarity metrics, teacher
// scoring, data generation, and the simulated LLM forward pass.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "llm/infer_engine.h"
#include "llm/model_config.h"
#include "llm/pretrainer.h"
#include "llm/sim_llm.h"
#include "llm/teacher.h"
#include "nn/kernels.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace {

using namespace tailormatch;

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn(n, n, 1.0f, rng, false);
  nn::Tensor b = nn::Tensor::Randn(n, n, 1.0f, rng, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(32)->Arg(64);

// Raw kernel-layer GEMM at a given size under a given backend, bypassing the
// autograd graph. range(0) = size, range(1) = backend (0 reference,
// 1 blocked), range(2) = thread count.
void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto backend = state.range(1) == 0 ? nn::kernels::Backend::kReference
                                           : nn::kernels::Backend::kBlocked;
  nn::kernels::KernelScope scope(backend, static_cast<int>(state.range(2)));
  Rng rng(5);
  std::vector<float> a(static_cast<size_t>(n) * n);
  std::vector<float> b(static_cast<size_t>(n) * n);
  std::vector<float> c(static_cast<size_t>(n) * n, 0.0f);
  for (float& x : a) x = static_cast<float>(rng.NextGaussian());
  for (float& x : b) x = static_cast<float>(rng.NextGaussian());
  for (auto _ : state) {
    nn::kernels::GemmNN(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * int64_t{n} * n * n);
}
BENCHMARK(BM_Gemm)
    ->Args({64, 0, 1})
    ->Args({64, 1, 1})
    ->Args({256, 0, 1})
    ->Args({256, 1, 1})
    ->Args({512, 1, 1})
    ->Args({512, 1, 4});

void BM_MatMulBackward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    nn::Tensor a = nn::Tensor::Randn(n, n, 1.0f, rng, true);
    nn::Tensor b = nn::Tensor::Randn(n, n, 1.0f, rng, true);
    nn::Tensor loss = nn::Sum(nn::MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(a.grad().data());
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(32);

text::Tokenizer& SharedTokenizer() {
  static text::Tokenizer* tokenizer = [] {
    auto pairs = llm::BuildPretrainPairs(500, 77);
    std::vector<std::string> corpus;
    for (auto& pair : pairs) {
      corpus.push_back(pair.left.surface + " " + pair.right.surface);
    }
    auto* t = new text::Tokenizer();
    t->Train(corpus, 4000, 2);
    return t;
  }();
  return *tokenizer;
}

void BM_TokenizerEncode(benchmark::State& state) {
  text::Tokenizer& tokenizer = SharedTokenizer();
  const std::string text =
      "Do the two entity descriptions refer to the same real-world product? "
      "Entity 1: sonara pulse zmw-304 printer 460 mah pro Entity 2: sonara "
      "pulse zmw 304 printer (7899-823-109)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Encode(text));
  }
}
BENCHMARK(BM_TokenizerEncode);

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::LevenshteinDistance(
        "sprocketx vertex pg-730 cassette", "sprocketx vertex pg-1130"));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaroWinkler("velodyne", "veloodyne"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_TeacherScore(benchmark::State& state) {
  llm::TeacherLlm teacher;
  data::EntityPair pair;
  pair.left.surface = "sprocketx vertex pg-730 cassette 7sp 12-32t pro";
  pair.right.surface = "sprocketx vertex pg 1130 cassette 11sp 11-36t";
  for (auto _ : state) {
    benchmark::DoNotOptimize(teacher.MatchScore(pair));
  }
}
BENCHMARK(BM_TeacherScore);

void BM_ProductGeneration(benchmark::State& state) {
  data::ProductGenerator generator((data::ProductGeneratorConfig()));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.SampleBase(rng));
  }
}
BENCHMARK(BM_ProductGeneration);

void BM_SimLlmForward(benchmark::State& state) {
  static llm::SimLlm* model = [] {
    llm::ModelConfig config;
    config.dim = 32;
    config.num_heads = 2;
    config.num_layers = 2;
    return new llm::SimLlm(config, SharedTokenizer());
  }();
  const std::string prompt =
      "Do the two entity descriptions refer to the same real-world product? "
      "Entity 1: sonara pulse zmw-304 printer Entity 2: sonara pulse zmw 304";
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->PredictMatchProbability(prompt));
  }
}
BENCHMARK(BM_SimLlmForward);

// ---- Planned-graph inference executor (DESIGN.md §5j) ----
//
// The planned/dynamic pair below is the per-request cost of the arena
// executor vs the autograd forward it replaces; the capture benchmark is
// the one-time cost of planning a sequence length; the prefix pair
// isolates the prompt-prefix cache (cold strands the cache via a weights
// epoch bump, exactly like an optimizer step would).

llm::SimLlm* InferBenchModel() {
  static llm::SimLlm* model = [] {
    llm::ModelConfig config;
    config.dim = 32;
    config.num_heads = 2;
    config.num_layers = 2;
    return new llm::SimLlm(config, SharedTokenizer());
  }();
  return model;
}

const std::string& InferBenchPrompt() {
  static const std::string prompt =
      "Do the two entity descriptions refer to the same real-world product? "
      "Entity 1: sonara pulse zmw-304 printer Entity 2: sonara pulse zmw 304";
  return prompt;
}

void BM_InferForwardPlanned(benchmark::State& state) {
  llm::SimLlm* model = InferBenchModel();
  llm::InferExecutorModeScope mode(llm::InferExecutorMode::kPlanned);
  (void)model->PredictMatchProbability(InferBenchPrompt());  // capture
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model->PredictMatchProbability(InferBenchPrompt()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InferForwardPlanned);

void BM_InferForwardDynamic(benchmark::State& state) {
  llm::SimLlm* model = InferBenchModel();
  llm::InferExecutorModeScope mode(llm::InferExecutorMode::kDynamic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model->PredictMatchProbability(InferBenchPrompt()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InferForwardDynamic);

// Plan capture + first planned forward. RestoreState drops the plans the
// way any structural change does, so every iteration replans; subtract
// BM_InferForwardPlanned for the capture cost alone (the state copy is a
// few hundred KB and small next to the capture).
void BM_InferPlanCapture(benchmark::State& state) {
  llm::SimLlm* model = InferBenchModel();
  llm::InferExecutorModeScope mode(llm::InferExecutorMode::kPlanned);
  const std::vector<std::vector<float>> snapshot = model->SnapshotState();
  for (auto _ : state) {
    model->RestoreState(snapshot);
    benchmark::DoNotOptimize(
        model->PredictMatchProbability(InferBenchPrompt()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InferPlanCapture);

void BM_InferPrefixHit(benchmark::State& state) {
  llm::SimLlm* model = InferBenchModel();
  llm::InferExecutorModeScope mode(llm::InferExecutorMode::kPlanned);
  (void)model->PredictMatchProbability(InferBenchPrompt());  // warm prefix
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model->PredictMatchProbability(InferBenchPrompt()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InferPrefixHit);

void BM_InferPrefixCold(benchmark::State& state) {
  llm::SimLlm* model = InferBenchModel();
  llm::InferExecutorModeScope mode(llm::InferExecutorMode::kPlanned);
  (void)model->PredictMatchProbability(InferBenchPrompt());  // keep the plan
  for (auto _ : state) {
    model->NotifyWeightsMutated();  // strand the prefix cache, keep plans
    benchmark::DoNotOptimize(
        model->PredictMatchProbability(InferBenchPrompt()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InferPrefixCold);

void BM_SimLlmTrainStep(benchmark::State& state) {
  static llm::SimLlm* model = [] {
    llm::ModelConfig config;
    config.dim = 32;
    config.num_heads = 2;
    config.num_layers = 2;
    return new llm::SimLlm(config, SharedTokenizer());
  }();
  llm::TrainExample example = model->EncodeExample(
      "Entity 1: sonara pulse zmw-304 printer Entity 2: sonara pulse zmw 304",
      true);
  Rng rng(4);
  for (auto _ : state) {
    nn::Tensor loss = model->ForwardLoss(example, /*training=*/true, rng);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_SimLlmTrainStep);

// The trace recorder sits on the serve hot path, so its per-event cost —
// enabled (one seqlock publish into the thread-local ring) and disabled
// (one relaxed atomic load) — is tracked here next to the kernels it
// shares request latency with.
void BM_TraceRecordEnabled(benchmark::State& state) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable();
  uint64_t arg = 0;
  for (auto _ : state) {
    recorder.Record(uint64_t{1} << 41, obs::TraceEventKind::kMark, arg++);
  }
  recorder.Disable();
  recorder.Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordEnabled);

void BM_TraceRecordDisabled(benchmark::State& state) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Disable();
  uint64_t arg = 0;
  for (auto _ : state) {
    recorder.Record(uint64_t{1} << 41, obs::TraceEventKind::kMark, arg++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordDisabled);

// One rolling-window sample: a bucket increment in the current one-second
// slice plus (once a second) the EWMA fold. Paid per served request.
void BM_WindowedHistogramRecord(benchmark::State& state) {
  obs::WindowedHistogram hist(obs::Histogram::DefaultLatencyBounds());
  int64_t sample = 0;
  for (auto _ : state) {
    hist.RecordAtSecond(static_cast<double>(sample % 50),
                        1000 + sample / 4096);
    ++sample;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowedHistogramRecord);

// ---- BENCH_kernels.json ----
//
// Standalone GEMM sweep (64/256/512, reference vs blocked, 1 vs N threads)
// written as JSON so CI and the roadmap table can diff kernel throughput
// across commits without parsing google-benchmark's console output.

double MeasureGemmGflops(int n, nn::kernels::Backend backend, int threads) {
  nn::kernels::KernelScope scope(backend, threads);
  Rng rng(6);
  std::vector<float> a(static_cast<size_t>(n) * n);
  std::vector<float> b(static_cast<size_t>(n) * n);
  std::vector<float> c(static_cast<size_t>(n) * n, 0.0f);
  for (float& x : a) x = static_cast<float>(rng.NextGaussian());
  for (float& x : b) x = static_cast<float>(rng.NextGaussian());
  const double flops = 2.0 * n * n * n;
  nn::kernels::GemmNN(n, n, n, a.data(), b.data(), c.data());  // warm-up
  double best_seconds = 1e30;
  // Best-of-reps is robust to scheduler noise on a shared machine; repeat
  // small sizes more so each rep is long enough to time.
  const int reps = n >= 512 ? 3 : (n >= 256 ? 5 : 20);
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    nn::kernels::GemmNN(n, n, n, a.data(), b.data(), c.data());
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (seconds < best_seconds) best_seconds = seconds;
  }
  benchmark::DoNotOptimize(c.data());
  return flops / best_seconds / 1e9;
}

void WriteKernelBenchJson(const char* path) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int many_threads = hw > 1 ? static_cast<int>(hw) : 4;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"gemm_kernels\",\n");
  std::fprintf(f, "  \"flops_per_gemm\": \"2*n^3\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(f, "  \"results\": [\n");
  bool first = true;
  for (int n : {64, 256, 512}) {
    const double ref = MeasureGemmGflops(n, nn::kernels::Backend::kReference, 1);
    struct Row {
      const char* backend;
      int threads;
      double gflops;
    };
    const Row rows[] = {
        {"reference", 1, ref},
        {"blocked", 1,
         MeasureGemmGflops(n, nn::kernels::Backend::kBlocked, 1)},
        {"blocked", many_threads,
         MeasureGemmGflops(n, nn::kernels::Backend::kBlocked, many_threads)},
    };
    for (const Row& row : rows) {
      std::fprintf(f,
                   "%s    {\"size\": %d, \"backend\": \"%s\", \"threads\": "
                   "%d, \"gflops\": %.2f, \"speedup_vs_reference\": %.2f}",
                   first ? "" : ",\n", n, row.backend, row.threads, row.gflops,
                   row.gflops / ref);
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  WriteKernelBenchJson("BENCH_kernels.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
