// Micro-benchmarks (google-benchmark) for the performance-critical
// substrate components: tensor ops, tokenizer, similarity metrics, teacher
// scoring, data generation, and the simulated LLM forward pass.

#include <benchmark/benchmark.h>

#include "data/generator.h"
#include "llm/model_config.h"
#include "llm/pretrainer.h"
#include "llm/sim_llm.h"
#include "llm/teacher.h"
#include "nn/tensor.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace {

using namespace tailormatch;

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn(n, n, 1.0f, rng, false);
  nn::Tensor b = nn::Tensor::Randn(n, n, 1.0f, rng, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(32)->Arg(64);

void BM_MatMulBackward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    nn::Tensor a = nn::Tensor::Randn(n, n, 1.0f, rng, true);
    nn::Tensor b = nn::Tensor::Randn(n, n, 1.0f, rng, true);
    nn::Tensor loss = nn::Sum(nn::MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(a.grad().data());
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(32);

text::Tokenizer& SharedTokenizer() {
  static text::Tokenizer* tokenizer = [] {
    auto pairs = llm::BuildPretrainPairs(500, 77);
    std::vector<std::string> corpus;
    for (auto& pair : pairs) {
      corpus.push_back(pair.left.surface + " " + pair.right.surface);
    }
    auto* t = new text::Tokenizer();
    t->Train(corpus, 4000, 2);
    return t;
  }();
  return *tokenizer;
}

void BM_TokenizerEncode(benchmark::State& state) {
  text::Tokenizer& tokenizer = SharedTokenizer();
  const std::string text =
      "Do the two entity descriptions refer to the same real-world product? "
      "Entity 1: sonara pulse zmw-304 printer 460 mah pro Entity 2: sonara "
      "pulse zmw 304 printer (7899-823-109)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Encode(text));
  }
}
BENCHMARK(BM_TokenizerEncode);

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::LevenshteinDistance(
        "sprocketx vertex pg-730 cassette", "sprocketx vertex pg-1130"));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaroWinkler("velodyne", "veloodyne"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_TeacherScore(benchmark::State& state) {
  llm::TeacherLlm teacher;
  data::EntityPair pair;
  pair.left.surface = "sprocketx vertex pg-730 cassette 7sp 12-32t pro";
  pair.right.surface = "sprocketx vertex pg 1130 cassette 11sp 11-36t";
  for (auto _ : state) {
    benchmark::DoNotOptimize(teacher.MatchScore(pair));
  }
}
BENCHMARK(BM_TeacherScore);

void BM_ProductGeneration(benchmark::State& state) {
  data::ProductGenerator generator((data::ProductGeneratorConfig()));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.SampleBase(rng));
  }
}
BENCHMARK(BM_ProductGeneration);

void BM_SimLlmForward(benchmark::State& state) {
  static llm::SimLlm* model = [] {
    llm::ModelConfig config;
    config.dim = 32;
    config.num_heads = 2;
    config.num_layers = 2;
    return new llm::SimLlm(config, SharedTokenizer());
  }();
  const std::string prompt =
      "Do the two entity descriptions refer to the same real-world product? "
      "Entity 1: sonara pulse zmw-304 printer Entity 2: sonara pulse zmw 304";
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->PredictMatchProbability(prompt));
  }
}
BENCHMARK(BM_SimLlmForward);

void BM_SimLlmTrainStep(benchmark::State& state) {
  static llm::SimLlm* model = [] {
    llm::ModelConfig config;
    config.dim = 32;
    config.num_heads = 2;
    config.num_layers = 2;
    return new llm::SimLlm(config, SharedTokenizer());
  }();
  llm::TrainExample example = model->EncodeExample(
      "Entity 1: sonara pulse zmw-304 printer Entity 2: sonara pulse zmw 304",
      true);
  Rng rng(4);
  for (auto _ : state) {
    nn::Tensor loss = model->ForwardLoss(example, /*training=*/true, rng);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_SimLlmTrainStep);

}  // namespace

BENCHMARK_MAIN();
