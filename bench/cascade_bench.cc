// Million-entity deduplication cascade benchmark (DESIGN.md §5i), written
// to BENCH_cascade.json:
//
//   1. recall-vs-LLM-budget curve: the synthetic corpus at 10k and 100k
//      entities, the cascade run at 0 / 0.02 / 0.05 / 0.1 / 0.2 LLM calls
//      per entity, plus the exhaustive-blocking baseline (no posting
//      pruning, no LSH) at the default 0.1 budget as the recall ceiling;
//   2. a single 1M-entity cascade run at the default budget — the scale
//      the pruned index + ANN layer exists for (the exhaustive baseline is
//      O(n^2)-ish and is skipped at this size);
//   3. index-build parallel scaling: CascadeIndex::Build at 1 vs 4 threads
//      over the 100k corpus (identical postings either way; the merge
//      order is deterministic);
//   4. per-stage p99 wall times from the cascade.<stage>.ms histograms
//      accumulated across every run above.
//
// Environment knobs:
//   TM_CASCADE_MAX=N   cap the largest corpus (default 1000000; set 100000
//                      to skip the 1M tier on slow machines)
//   TM_CASCADE_EXACT=0 skip the exhaustive baselines

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cascade/ann_index.h"
#include "cascade/dedup.h"
#include "data/corpus_stream.h"
#include "llm/infer_engine.h"
#include "llm/sim_llm.h"
#include "obs/metrics.h"
#include "text/tfidf.h"
#include "util/check.h"
#include "util/string_util.h"

using namespace tailormatch;

namespace {

constexpr uint64_t kSeed = 20260809;  // documented in EXPERIMENTS.md

llm::SimLlm MakeCascadeModel() {
  std::vector<std::string> corpus;
  for (int i = 0; i < 40; ++i) {
    corpus.push_back("do the two entity descriptions refer to the same "
                     "real-world product entity 1 widget pro model " +
                     std::to_string(i) + " entity 2 widget pro model " +
                     std::to_string(i + 1));
  }
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1200, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.max_seq = 32;
  config.init_seed = 11;
  return llm::SimLlm(config, std::move(tokenizer));
}

struct RunRecord {
  size_t entities = 0;
  double budget = 0.0;
  bool exact = false;
  cascade::DedupReport report;
  double total_ms = 0.0;
};

RunRecord RunCascade(const llm::SimLlm* model, size_t entities, double budget,
                     bool exact) {
  data::CorpusStreamConfig corpus;
  corpus.num_entities = entities;
  corpus.seed = kSeed;

  cascade::DedupOptions options;
  options.llm_budget_per_entity = budget;
  options.num_threads = 4;
  options.index.seed = kSeed;
  if (exact) {
    options.index.max_posting_length = 0;
    options.index.max_df_fraction = 1.0;
    options.index.lsh_tables = 0;
  }

  data::CorpusStream stream(corpus);
  cascade::DedupPipeline pipeline(options, model);
  Result<cascade::DedupReport> result = pipeline.Run(stream);
  TM_CHECK(result.ok()) << result.status().ToString();

  RunRecord record;
  record.entities = entities;
  record.budget = budget;
  record.exact = exact;
  record.report = std::move(result).value();
  for (const auto& [stage, ms] : record.report.stage_ms) {
    record.total_ms += ms;
  }
  std::printf("%8zu entities  budget %.2f %s  blocking recall %.4f  "
              "pair recall %.4f  precision %.4f  calls/entity %.4f  "
              "%.0fms\n",
              entities, budget, record.exact ? "exact  " : "cascade",
              record.report.candidate_recall, record.report.pair_recall,
              record.report.pair_precision,
              record.report.llm_calls_per_entity, record.total_ms);
  std::fflush(stdout);
  return record;
}

void AppendRunJson(const RunRecord& record, bool last, std::string* json) {
  const cascade::DedupReport& report = record.report;
  *json += "    {";
  *json += StrFormat("\"entities\": %zu, ", record.entities);
  *json += StrFormat("\"budget\": %.3f, ", record.budget);
  *json += StrFormat("\"exact\": %s, ", record.exact ? "true" : "false");
  *json += StrFormat("\"true_pairs\": %llu, ",
                     static_cast<unsigned long long>(report.true_pairs));
  *json += StrFormat("\"candidate_pairs\": %zu, ", report.candidate_pairs);
  *json += StrFormat("\"candidate_recall\": %.6f, ", report.candidate_recall);
  *json += StrFormat("\"uncertain\": %zu, ", report.uncertain);
  *json += StrFormat("\"escalated\": %zu, ", report.escalated);
  *json += StrFormat("\"llm_calls_per_entity\": %.6f, ",
                     report.llm_calls_per_entity);
  *json += StrFormat("\"pair_recall\": %.6f, ", report.pair_recall);
  *json += StrFormat("\"pair_precision\": %.6f, ", report.pair_precision);
  *json += StrFormat("\"clusters\": %zu, ", report.clusters);
  *json += StrFormat("\"total_ms\": %.1f, ", record.total_ms);
  *json += "\"stage_ms\": {";
  bool first = true;
  for (const auto& [stage, ms] : report.stage_ms) {
    *json += StrFormat("%s\"%s\": %.2f", first ? "" : ", ", stage.c_str(), ms);
    first = false;
  }
  *json += "}}";
  *json += last ? "\n" : ",\n";
}

double EnvSize(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr || *value == '\0' ? fallback : std::atof(value);
}

}  // namespace

int main() {
  const size_t max_entities =
      static_cast<size_t>(EnvSize("TM_CASCADE_MAX", 1000000.0));
  const bool run_exact = EnvSize("TM_CASCADE_EXACT", 1.0) != 0.0;
  llm::SimLlm model = MakeCascadeModel();

  const std::vector<double> budgets = {0.0, 0.02, 0.05, 0.1, 0.2};
  std::vector<size_t> scales = {10000, 100000};
  std::vector<RunRecord> runs;

  for (size_t entities : scales) {
    if (entities > max_entities) continue;
    for (double budget : budgets) {
      runs.push_back(RunCascade(&model, entities, budget, /*exact=*/false));
    }
    if (run_exact) {
      runs.push_back(RunCascade(&model, entities, 0.1, /*exact=*/true));
    }
  }
  if (max_entities >= 1000000) {
    runs.push_back(RunCascade(&model, 1000000, 0.1, /*exact=*/false));
  }

  // Escalation executor A/B: the same 10k cascade at the largest budget,
  // once with the dynamic autograd forward pinned and once with the planned
  // arena executor. Only the escalate stage scores through the model, so
  // its wall time isolates the executor. (The sweep above runs under the
  // process default, i.e. planned.)
  double esc_dynamic_ms = 0.0, esc_planned_ms = 0.0;
  if (max_entities >= 10000) {
    {
      llm::InferExecutorModeScope mode(llm::InferExecutorMode::kDynamic);
      RunRecord record = RunCascade(&model, 10000, 0.2, /*exact=*/false);
      esc_dynamic_ms = record.report.stage_ms.at("escalate");
    }
    {
      llm::InferExecutorModeScope mode(llm::InferExecutorMode::kPlanned);
      RunRecord record = RunCascade(&model, 10000, 0.2, /*exact=*/false);
      esc_planned_ms = record.report.stage_ms.at("escalate");
    }
    std::printf("escalation A/B (10k entities, budget 0.2): planned %.0fms "
                "vs dynamic %.0fms -> %.2fx\n",
                esc_planned_ms, esc_dynamic_ms,
                esc_planned_ms > 0.0 ? esc_dynamic_ms / esc_planned_ms : 0.0);
  }

  // Index-build scaling at the 100k tier: same postings at every thread
  // count, so the only difference is wall time.
  double build_ms_1 = 0.0, build_ms_4 = 0.0;
  size_t postings_1 = 0, postings_4 = 0;
  {
    const size_t entities = std::min<size_t>(100000, max_entities);
    data::CorpusStreamConfig corpus;
    corpus.num_entities = entities;
    corpus.seed = kSeed;
    data::CorpusStream stream(corpus);
    std::vector<std::string> surfaces;
    data::Entity entity;
    while (stream.Next(&entity)) surfaces.push_back(entity.surface);
    text::TfidfEmbedder embedder;
    embedder.Fit(surfaces);
    std::vector<text::SparseVector> vectors;
    vectors.reserve(surfaces.size());
    for (const std::string& surface : surfaces) {
      vectors.push_back(embedder.Embed(surface));
    }
    cascade::CascadeIndexOptions options;
    options.seed = kSeed;
    const auto timed_build = [&](int threads, size_t* postings) {
      cascade::CascadeIndex index(options);
      const auto start = std::chrono::steady_clock::now();
      index.Build(&vectors, threads);
      *postings = index.num_postings();
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
    build_ms_1 = timed_build(1, &postings_1);
    build_ms_4 = timed_build(4, &postings_4);
    TM_CHECK_EQ(postings_1, postings_4);
    std::printf("index build %zu entities: 1 thread %.0fms, 4 threads %.0fms "
                "(identical %zu postings)\n",
                entities, build_ms_1, build_ms_4, postings_1);
  }

  std::string json = "{\n  \"bench\": \"cascade\",\n";
  json += StrFormat("  \"seed\": %llu,\n",
                    static_cast<unsigned long long>(kSeed));
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    AppendRunJson(runs[i], i + 1 == runs.size(), &json);
  }
  json += "  ],\n";
  json += StrFormat(
      "  \"index_build\": {\"entities\": %zu, \"threads1_ms\": %.1f, "
      "\"threads4_ms\": %.1f, \"speedup\": %.2f, \"postings\": %zu},\n",
      std::min<size_t>(100000, max_entities), build_ms_1, build_ms_4,
      build_ms_4 > 0.0 ? build_ms_1 / build_ms_4 : 0.0, postings_1);
  json += StrFormat(
      "  \"escalation\": {\"entities\": 10000, \"budget\": 0.2, "
      "\"dynamic_ms\": %.1f, \"planned_ms\": %.1f, \"speedup\": %.2f},\n",
      esc_dynamic_ms, esc_planned_ms,
      esc_planned_ms > 0.0 ? esc_dynamic_ms / esc_planned_ms : 0.0);

  // Per-stage p99 across every run above, from the pipeline's histograms.
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  json += "  \"stage_p99_ms\": {";
  bool first = true;
  for (const char* stage : {"ingest", "embed", "index", "candidates",
                            "calibrate", "score", "escalate", "cluster"}) {
    const auto* stats =
        snapshot.FindHistogram(std::string("cascade.") + stage + ".ms");
    if (stats == nullptr) continue;
    json += StrFormat("%s\"%s\": %.2f", first ? "" : ", ", stage, stats->p99);
    first = false;
  }
  json += "}\n}\n";

  FILE* out = std::fopen("BENCH_cascade.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_cascade.json\n");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote BENCH_cascade.json (%zu runs)\n", runs.size());
  return 0;
}
