// Pipeline-substrate benchmark: blocking quality on generated catalogs.
// Not a paper table — entity matching benchmarks arrive pre-blocked — but
// the paper's data-integration framing (Section 1) presumes this stage;
// this harness reports pair completeness vs reduction ratio for the three
// blockers on a WDC-style catalog.

#include <memory>

#include "bench_common.h"
#include "block/blocker.h"
#include "data/generator.h"

using namespace tailormatch;

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader("Blocking quality (catalog deduplication substrate)",
                     env);

  // A catalog of 400 products, each listed 1-3 times.
  data::ProductGeneratorConfig config;
  config.id_salt = 4242;
  data::ProductGenerator generator(config);
  Rng rng(31);
  std::vector<data::Entity> records;
  for (int i = 0; i < 400; ++i) {
    data::Entity base = generator.SampleBase(rng);
    const int listings = rng.NextInt(1, 3);
    for (int listing = 0; listing < listings; ++listing) {
      records.push_back(
          generator.RenderVariant(base, listing == 0 ? 0.15 : 0.5, rng));
    }
  }
  rng.Shuffle(records);
  std::printf("catalog: %zu listings of 400 products\n", records.size());

  struct Entry {
    const char* name;
    std::unique_ptr<block::Blocker> blocker;
  };
  std::vector<Entry> blockers;
  blockers.push_back({"token (>=2 shared)",
                      std::make_unique<block::TokenBlocker>()});
  blockers.push_back({"sorted-neighborhood (w=8)",
                      std::make_unique<block::SortedNeighborhoodBlocker>(8)});
  blockers.push_back({"tfidf-knn (k=6)",
                      std::make_unique<block::TfidfKnnBlocker>(6)});

  eval::TablePrinter table({"Blocker", "Candidates", "Pair completeness",
                            "Reduction ratio", "Time"});
  for (Entry& entry : blockers) {
    bench::Stopwatch watch;
    std::vector<block::CandidatePair> candidates =
        entry.blocker->CandidatesWithin(records);
    block::BlockingQuality quality =
        block::EvaluateBlockingWithin(records, candidates);
    table.AddRow({entry.name, StrFormat("%zu", quality.candidates),
                  StrFormat("%.3f", quality.pair_completeness),
                  StrFormat("%.3f", quality.reduction_ratio),
                  StrFormat("%lds", watch.seconds())});
  }
  table.Print();
  std::printf("\nExpected shape: token and tfidf-knn blocking keep nearly\n"
              "all true pairs while discarding >98%% of the %zu possible\n"
              "pairs; single-pass sorted neighborhood trades completeness\n"
              "for simplicity (production systems run multiple passes).\n",
              records.size() * (records.size() - 1) / 2);
  return 0;
}
