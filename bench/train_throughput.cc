// Data-parallel training throughput: examples/sec and epoch wall-time at
// TM_TRAIN_THREADS {1, 2, 4, 8}, plus the determinism hash that proves every
// worker count trained to the same bits.
//
//   bench_train_throughput       run both sweeps, write BENCH_train.json
//
// Two cost profiles:
//   - compute-only: the raw simulated model, which is CPU-bound — on a
//     single-core host extra workers cannot beat the serial path, so this
//     row is the honesty check, not the headline;
//   - accelerator-bound: each example additionally holds its worker for
//     sim_example_cost_us (the trainer's analog of the micro-batcher's
//     dispatch_cost_us), modelling a backend where per-example latency, not
//     host arithmetic, dominates. Overlapping that latency is exactly what
//     the data-parallel trainer buys, and it is the headline regime.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "llm/trainer.h"
#include "text/tokenizer.h"

namespace tailormatch {
namespace {

std::vector<std::pair<std::string, bool>> KeywordTask() {
  std::vector<std::pair<std::string, bool>> data;
  const char* positives[] = {
      "entity 1: alpha same entity 2: beta", "same entity 1: x entity 2: y",
      "entity 1: gamma entity 2: same delta"};
  const char* negatives[] = {
      "entity 1: alpha entity 2: beta", "entity 1: x entity 2: y other",
      "entity 1: gamma entity 2: delta"};
  for (int repeat = 0; repeat < 20; ++repeat) {
    for (const char* text : positives) data.emplace_back(text, true);
    for (const char* text : negatives) data.emplace_back(text, false);
  }
  return data;
}

llm::SimLlm MakeBenchModel() {
  std::vector<std::string> corpus;
  for (auto& [text, label] : KeywordTask()) corpus.push_back(text);
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1200, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.max_seq = 24;
  config.init_seed = 11;
  return llm::SimLlm(config, std::move(tokenizer));
}

uint64_t Fnv1a(const void* data, size_t bytes, uint64_t hash) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

struct RunResult {
  std::string profile;
  int threads = 0;
  double examples_per_sec = 0.0;
  double epoch_ms = 0.0;
  uint64_t hash = 0;
};

RunResult RunOnce(const std::string& profile, int threads, int sim_cost_us) {
  llm::SimLlm model = MakeBenchModel();
  const auto task = KeywordTask();
  std::vector<llm::TrainExample> examples;
  for (auto& [text, label] : task) {
    examples.push_back(model.EncodeExample(text, label));
  }
  llm::TrainOptions options;
  options.epochs = 3;
  options.batch_size = 32;
  options.learning_rate = 5e-3f;
  options.seed = 3;
  options.num_threads = threads;
  options.sim_example_cost_us = sim_cost_us;

  const auto start = std::chrono::steady_clock::now();
  llm::TrainStats stats = llm::TrainModel(model, examples, options);
  const double total_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const auto& tensor : model.SnapshotState()) {
    hash = Fnv1a(tensor.data(), tensor.size() * sizeof(float), hash);
  }
  for (double loss : stats.epoch_train_loss) {
    hash = Fnv1a(&loss, sizeof(loss), hash);
  }

  RunResult result;
  result.profile = profile;
  result.threads = threads;
  result.epoch_ms = total_ms / options.epochs;
  result.examples_per_sec =
      static_cast<double>(examples.size()) * options.epochs /
      (total_ms / 1000.0);
  result.hash = hash;
  return result;
}

int Run() {
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  // Accelerator-bound profile: 1500us of simulated backend latency per
  // example, large enough that overlap — not host arithmetic — decides the
  // epoch wall-time.
  const int kSimCostUs = 1500;

  std::vector<RunResult> runs;
  std::printf("%-18s %8s %14s %10s %18s\n", "profile", "threads",
              "examples/s", "epoch_ms", "hash");
  for (const std::string& profile : {std::string("compute_only"),
                                     std::string("accelerator_bound")}) {
    const int cost = profile == "compute_only" ? 0 : kSimCostUs;
    for (int threads : thread_counts) {
      RunResult run = RunOnce(profile, threads, cost);
      runs.push_back(run);
      std::printf("%-18s %8d %14.1f %10.2f   %016llx\n", run.profile.c_str(),
                  run.threads, run.examples_per_sec, run.epoch_ms,
                  static_cast<unsigned long long>(run.hash));
    }
  }

  // Each profile must train to the same bits at every worker count.
  bool determinism_ok = true;
  for (const RunResult& run : runs) {
    for (const RunResult& other : runs) {
      if (run.profile == other.profile && run.hash != other.hash) {
        determinism_ok = false;
      }
    }
  }

  double accel_1 = 0.0, accel_8 = 0.0, accel_8_epoch_ms = 0.0;
  uint64_t accel_hash = 0;
  for (const RunResult& run : runs) {
    if (run.profile != "accelerator_bound") continue;
    if (run.threads == 1) accel_1 = run.examples_per_sec;
    if (run.threads == 8) {
      accel_8 = run.examples_per_sec;
      accel_8_epoch_ms = run.epoch_ms;
      accel_hash = run.hash;
    }
  }
  const double speedup = accel_1 > 0.0 ? accel_8 / accel_1 : 0.0;
  std::printf("\nheadline: accelerator-bound (%dus/example): 8 threads "
              "%.1f vs 1 thread %.1f examples/s -> %.2fx, determinism %s\n",
              kSimCostUs, accel_8, accel_1, speedup,
              determinism_ok ? "ok" : "MISMATCH");

  std::string json = "{\n  \"bench\": \"train_throughput\",\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"profile\":\"%s\",\"threads\":%d,"
                  "\"examples_per_sec\":%.1f,\"epoch_ms\":%.2f,"
                  "\"hash\":\"%016llx\"}",
                  runs[i].profile.c_str(), runs[i].threads,
                  runs[i].examples_per_sec, runs[i].epoch_ms,
                  static_cast<unsigned long long>(runs[i].hash));
    json += line;
    json += i + 1 < runs.size() ? ",\n" : "\n";
  }
  char headline[320];
  std::snprintf(headline, sizeof(headline),
                "  ],\n  \"headline\": {\"profile\":\"accelerator_bound\","
                "\"sim_example_cost_us\":%d,"
                "\"threads1_examples_per_sec\":%.1f,"
                "\"threads8_examples_per_sec\":%.1f,"
                "\"threads8_epoch_ms\":%.2f,\"speedup\":%.2f,"
                "\"determinism_hash\":\"%016llx\",\"determinism_ok\":%s}\n}\n",
                kSimCostUs, accel_1, accel_8, accel_8_epoch_ms, speedup,
                static_cast<unsigned long long>(accel_hash),
                determinism_ok ? "true" : "false");
  json += headline;

  FILE* out = std::fopen("BENCH_train.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_train.json\n");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote BENCH_train.json (%zu runs)\n", runs.size());
  return determinism_ok ? 0 : 1;
}

}  // namespace
}  // namespace tailormatch

int main() { return tailormatch::Run(); }
