// Reproduces the prompt-sensitivity analysis of Section 3.3: the standard
// deviation of F1 across the fine-tuning prompt and three alternative
// phrasings, before and after fine-tuning. The paper reports that
// fine-tuning collapses Llama 8B's sensitivity from 15.76 to ~1.9-3.5 F1
// points while GPT-4o-mini starts low (2.72) and drops further.

#include "bench_common.h"
#include "eval/metrics.h"

using namespace tailormatch;
using data::BenchmarkId;
using llm::ModelFamily;

namespace {

std::vector<double> F1AcrossPrompts(bench::BenchEnvironment& env,
                                    const llm::SimLlm& model,
                                    BenchmarkId id) {
  std::vector<double> scores;
  for (prompt::PromptTemplate tmpl : prompt::AllPromptTemplates()) {
    scores.push_back(env.TestF1(model, id, tmpl));
  }
  return scores;
}

std::string Sensitivity(const std::vector<double>& scores) {
  return StrFormat("%.2f", eval::StdDev(scores));
}

}  // namespace

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader(
      "Section 3.3: prompt sensitivity (stddev of F1 across 4 prompts)",
      env);

  eval::TablePrinter table({"Model", "Setting", "Test set", "default",
                            "simple-free", "complex-force", "simple-force",
                            "StdDev"});

  for (ModelFamily family : {ModelFamily::kLlama8B, ModelFamily::kGpt4oMini}) {
    std::vector<double> zero_sensitivities;
    std::vector<double> tuned_sensitivities;
    for (BenchmarkId id :
         {BenchmarkId::kWdcSmall, BenchmarkId::kAbtBuy,
          BenchmarkId::kDblpScholar}) {
      // Zero-shot sensitivity.
      std::vector<double> zero_scores =
          F1AcrossPrompts(env, env.zero_shot(family), id);
      zero_sensitivities.push_back(eval::StdDev(zero_scores));
      std::vector<std::string> zero_row = {
          llm::ModelFamilyTableName(family), "zero-shot",
          data::BenchmarkShortName(id)};
      for (double score : zero_scores) {
        zero_row.push_back(StrFormat("%.2f", score));
      }
      zero_row.push_back(Sensitivity(zero_scores));
      table.AddRow(zero_row);

      // Fine-tuned (on the same dataset, i.e. non-transfer) sensitivity.
      auto model = env.FineTuneOn(family, id, "t2");
      std::vector<double> tuned_scores = F1AcrossPrompts(env, *model, id);
      tuned_sensitivities.push_back(eval::StdDev(tuned_scores));
      std::vector<std::string> tuned_row = {
          llm::ModelFamilyTableName(family), "fine-tuned",
          data::BenchmarkShortName(id)};
      for (double score : tuned_scores) {
        tuned_row.push_back(StrFormat("%.2f", score));
      }
      tuned_row.push_back(Sensitivity(tuned_scores));
      table.AddRow(tuned_row);
    }
    table.AddSeparator();
    std::printf("%s: mean sensitivity zero-shot %.2f -> fine-tuned %.2f\n",
                llm::ModelFamilyTableName(family),
                eval::Mean(zero_sensitivities),
                eval::Mean(tuned_sensitivities));
  }

  // Structured explanations further stabilize performance (Section 4 /
  // contribution 5): compare sensitivities of the WDC-tuned Llama model
  // with and without structured explanations.
  {
    const data::Benchmark& wdc = env.benchmark(BenchmarkId::kWdcSmall);
    core::FineTuneOptions options;
    options.explanation_style = explain::ExplanationStyle::kStructured;
    options.valid_max_pairs = env.context().valid_max_pairs;
    auto structured = env.FineTune(ModelFamily::kLlama8B, wdc.train, wdc.valid,
                                   options, "t3_structured");
    std::vector<double> scores =
        F1AcrossPrompts(env, *structured, BenchmarkId::kWdcSmall);
    std::vector<std::string> row = {"Llama 8B", "ft+structured", "WDC"};
    for (double score : scores) row.push_back(StrFormat("%.2f", score));
    row.push_back(Sensitivity(scores));
    table.AddRow(row);
  }

  table.Print();
  std::printf(
      "\nPaper shapes to check: the weakly-instruction-tuned model (Llama)\n"
      "is more prompt-sensitive than GPT-4o-mini in every setting. Known\n"
      "deviation (see EXPERIMENTS.md): in the simulation, single-prompt\n"
      "LoRA fine-tuning *specializes* the model to the tuning prompt and\n"
      "raises sensitivity, whereas real instruction-tuned LLMs generalize\n"
      "the fine-tuned behaviour across phrasings.\n");
  return 0;
}
