// Error analysis: corner-case vs ordinary-pair F1, before and after
// fine-tuning. WDC Products' defining property is its 80% corner-case
// share (Section 2); this harness shows where zero-shot models fail and
// what fine-tuning actually fixes.

#include "bench_common.h"
#include "eval/evaluator.h"

using namespace tailormatch;

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader("Error analysis: corner cases vs ordinary pairs (WDC)",
                     env);

  const data::Benchmark& wdc = env.benchmark(data::BenchmarkId::kWdcSmall);
  eval::EvalOptions options;
  options.max_pairs = env.context().eval_max_pairs;

  eval::TablePrinter table({"Model", "Setting", "Overall F1", "Corner F1",
                            "Ordinary F1"});
  for (llm::ModelFamily family :
       {llm::ModelFamily::kLlama8B, llm::ModelFamily::kGpt4oMini}) {
    eval::StratifiedEvalResult zero =
        eval::EvaluateByCornerCase(env.zero_shot(family), wdc.test, options);
    table.AddRow({llm::ModelFamilyTableName(family), "zero-shot",
                  StrFormat("%.2f", zero.overall.metrics.f1),
                  StrFormat("%.2f", zero.corner.metrics.f1),
                  StrFormat("%.2f", zero.ordinary.metrics.f1)});
    auto tuned = env.FineTuneOn(family, data::BenchmarkId::kWdcSmall, "t2");
    eval::StratifiedEvalResult fine =
        eval::EvaluateByCornerCase(*tuned, wdc.test, options);
    table.AddRow({llm::ModelFamilyTableName(family), "fine-tuned",
                  StrFormat("%.2f", fine.overall.metrics.f1),
                  StrFormat("%.2f", fine.corner.metrics.f1),
                  StrFormat("%.2f", fine.ordinary.metrics.f1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: corner-case F1 is far below ordinary-pair F1 for\n"
      "zero-shot models, and fine-tuning closes most of that gap (corner\n"
      "cases are what the fine-tuning set teaches).\n");
  return 0;
}
