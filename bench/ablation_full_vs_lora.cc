// Ablation: LoRA vs full fine-tuning. The paper uses LoRA for the
// open-source models to keep compute manageable; PLM-era matchers (Ditto,
// RoBERTa dual-objective) fully fine-tune instead. This ablation compares
// both regimes on WDC small: F1, trainable-parameter count, and wall time.

#include "bench_common.h"

using namespace tailormatch;

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader("Ablation: LoRA vs full fine-tuning (Llama 8B, WDC)",
                     env);

  const data::Benchmark& wdc = env.benchmark(data::BenchmarkId::kWdcSmall);
  const double zero = env.ZeroShotF1(llm::ModelFamily::kLlama8B,
                                     data::BenchmarkId::kWdcSmall);
  llm::FamilyProfile profile =
      llm::GetFamilyProfile(llm::ModelFamily::kLlama8B);

  eval::TablePrinter table({"Regime", "Trainable params", "WDC F1",
                            "Delta vs zero-shot", "Time"});
  for (bool full : {false, true}) {
    // Count trainable parameters for the regime.
    size_t trainable = 0;
    {
      auto probe = env.zero_shot(llm::ModelFamily::kLlama8B).Clone();
      if (!full) {
        nn::LoraConfig lora;
        lora.rank = profile.lora_rank;
        lora.alpha = profile.lora_alpha;
        lora.dropout = profile.lora_dropout;
        probe->EnableLora(lora);
      }
      for (const nn::Tensor& t : probe->TrainableParameters()) {
        trainable += t.size();
      }
    }

    bench::Stopwatch watch;
    core::FineTuner tuner(profile);
    core::FineTuneOptions options;
    options.full_fine_tuning = full;
    options.valid_max_pairs = env.context().valid_max_pairs;
    if (env.context().epochs_override > 0) {
      options.epochs = env.context().epochs_override;
    }
    core::FineTuneResult result =
        tuner.Run(env.zero_shot(llm::ModelFamily::kLlama8B), wdc.train,
                  wdc.valid, options);
    const double f1 = env.TestF1(*result.model, data::BenchmarkId::kWdcSmall);
    table.AddRow({full ? "full fine-tuning" : "LoRA (paper)",
                  StrFormat("%zu", trainable), StrFormat("%.2f", f1),
                  StrFormat("%+.2f", f1 - zero),
                  StrFormat("%lds", watch.seconds())});
  }
  table.Print();
  std::printf(
      "\nExpected shape: LoRA reaches comparable F1 with an order of\n"
      "magnitude fewer trainable parameters (the paper's motivation for\n"
      "using it on the open-source models).\n");
  return 0;
}
