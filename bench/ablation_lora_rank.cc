// Ablation: LoRA rank. The paper fixes r=64 (alpha 16) for the 4096-dim
// Llama models "to balance performance and computational efficiency"; this
// ablation sweeps the rank at simulation scale and reports WDC F1 and the
// number of trainable parameters, showing the capacity/efficiency tradeoff
// that motivated the choice.

#include "bench_common.h"

using namespace tailormatch;

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader("Ablation: LoRA rank (Llama 8B on WDC small)", env);

  const data::Benchmark& wdc = env.benchmark(data::BenchmarkId::kWdcSmall);
  const double zero = env.ZeroShotF1(llm::ModelFamily::kLlama8B,
                                     data::BenchmarkId::kWdcSmall);

  eval::TablePrinter table(
      {"LoRA rank", "Trainable params", "WDC F1", "Delta vs zero-shot"});
  for (int rank : {2, 4, 8, 16}) {
    llm::FamilyProfile profile =
        llm::GetFamilyProfile(llm::ModelFamily::kLlama8B);
    profile.lora_rank = rank;

    // Count trainable parameters at this rank.
    size_t trainable = 0;
    {
      auto probe = env.zero_shot(llm::ModelFamily::kLlama8B).Clone();
      nn::LoraConfig lora;
      lora.rank = rank;
      lora.alpha = profile.lora_alpha;
      lora.dropout = profile.lora_dropout;
      probe->EnableLora(lora);
      for (const nn::Tensor& t : probe->TrainableParameters()) {
        trainable += t.size();
      }
    }

    core::FineTuner tuner(profile);
    core::FineTuneOptions options;
    options.valid_max_pairs = env.context().valid_max_pairs;
    if (env.context().epochs_override > 0) {
      options.epochs = env.context().epochs_override;
    }
    core::FineTuneResult result =
        tuner.Run(env.zero_shot(llm::ModelFamily::kLlama8B), wdc.train,
                  wdc.valid, options);
    const double f1 =
        env.TestF1(*result.model, data::BenchmarkId::kWdcSmall);
    table.AddRow({StrFormat("%d", rank), StrFormat("%zu", trainable),
                  StrFormat("%.2f", f1), StrFormat("%+.2f", f1 - zero)});
  }
  table.Print();
  std::printf("\nZero-shot baseline: %.2f F1. Expected shape: gains saturate\n"
              "quickly with rank - at simulation scale even tiny ranks carry\n"
              "the needed capacity, mirroring the paper's observation that\n"
              "r=64 is about balance rather than raw performance.\n", zero);
  return 0;
}
