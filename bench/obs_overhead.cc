// Observability overhead benchmark: how much serve throughput does the
// tracing/windowed-metrics layer cost? Writes BENCH_obs.json.
//
// Reruns the PR-4 headline serve shape — closed loop, 8 clients, one
// outstanding request each, max_batch 8, 200us dispatch cost — twice:
// once with the trace recorder disabled (only the always-on windowed
// latency histograms run) and once with it enabled, so every request
// records its enqueue/dispatch/reply lifeline plus batch events. Each
// config runs kReps times and keeps the best run, since the quantity
// under test is the instrumentation's floor cost, not scheduler noise.
//
// The gate is the on/off ratio from the same process on the same machine
// (>= kMinOnOffRatio, i.e. tracing may cost at most ~5%). The committed
// BENCH_serve.json throughput is reported alongside for cross-PR context
// but never gated on: it was measured by a different binary in a
// different run, so a hard comparison would only measure machine drift.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/matcher.h"
#include "llm/sim_llm.h"
#include "obs/trace.h"
#include "serve/micro_batcher.h"
#include "serve/model_registry.h"
#include "text/tokenizer.h"

using namespace tailormatch;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kClients = 8;
constexpr int kPerClient = 250;
constexpr int kMaxBatch = 8;
constexpr int kDispatchCostUs = 200;
constexpr int kReps = 3;
constexpr double kMinOnOffRatio = 0.95;

// Same tiny-but-real model as bench_serve_load, so the throughputs here
// are directly comparable to the committed BENCH_serve.json numbers.
llm::SimLlm MakeServeModel() {
  std::vector<std::string> corpus;
  for (int i = 0; i < 40; ++i) {
    corpus.push_back("do the two entity descriptions refer to the same "
                     "real-world product entity 1 widget pro model " +
                     std::to_string(i) + " entity 2 widget pro model " +
                     std::to_string(i + 1));
  }
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1200, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.max_seq = 32;
  config.init_seed = 11;
  return llm::SimLlm(config, std::move(tokenizer));
}

data::EntityPair MakePair(int i) {
  return core::MakeSurfacePair(
      "widget pro model " + std::to_string(i),
      "widget pro model " + std::to_string(i % 7 == 0 ? i : i + 1),
      data::Domain::kProduct);
}

// One closed-loop run; returns pairs/sec.
double RunClosedLoop(const std::shared_ptr<const serve::ServedModel>& model) {
  serve::MicroBatcherConfig config;
  config.max_batch = kMaxBatch;
  config.max_wait_us = 200;
  config.dispatch_cost_us = kDispatchCostUs;
  config.batch_parallelism = 1;
  serve::MicroBatcher batcher(config);

  std::vector<int> served(kClients, 0);
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        serve::ServeResult result = batcher.SubmitAndWait(
            model, prompt::PromptTemplate::kDefault,
            MakePair(c * kPerClient + i));
        if (result.outcome == serve::RequestOutcome::kOk) ++served[c];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  batcher.Shutdown();

  int total = 0;
  for (int count : served) total += count;
  return elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0;
}

double BestOf(const std::shared_ptr<const serve::ServedModel>& model,
              bool tracing, std::vector<double>* runs) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    recorder.Clear();
    if (tracing) {
      recorder.Enable();
    } else {
      recorder.Disable();
    }
    const double throughput = RunClosedLoop(model);
    runs->push_back(throughput);
    if (throughput > best) best = throughput;
    std::printf("  tracing %-3s rep %d: %10.1f pairs/s\n",
                tracing ? "on" : "off", rep, throughput);
  }
  recorder.Disable();
  return best;
}

// Pulls batch8_throughput out of the committed PR-4 baseline for context;
// 0.0 when the file is not reachable from the working directory.
double ReadServeBaseline() {
  for (const char* path : {"BENCH_serve.json", "../BENCH_serve.json"}) {
    std::ifstream in(path);
    if (!in) continue;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    const std::string key = "\"batch8_throughput\":";
    const size_t at = text.rfind(key);
    if (at == std::string::npos) continue;
    return std::atof(text.c_str() + at + key.size());
  }
  return 0.0;
}

void AppendRuns(const std::vector<double>& runs, std::string* json) {
  for (size_t i = 0; i < runs.size(); ++i) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%s%.1f", i ? "," : "", runs[i]);
    *json += buffer;
  }
}

}  // namespace

int main() {
  llm::SimLlm model_value = MakeServeModel();
  auto served = std::make_shared<const serve::ServedModel>(serve::ServedModel{
      "bench", 1, "<memory>",
      std::shared_ptr<const llm::SimLlm>(&model_value,
                                         [](const llm::SimLlm*) {})});

  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Disable();

  std::printf("obs overhead: closed loop, %d clients, max_batch %d, "
              "%dus dispatch, best of %d\n",
              kClients, kMaxBatch, kDispatchCostUs, kReps);

  // Warm-up run (tokenizer caches, thread pool, allocator) before timing.
  RunClosedLoop(served);

  std::vector<double> off_runs, on_runs;
  const double off = BestOf(served, /*tracing=*/false, &off_runs);
  const double on = BestOf(served, /*tracing=*/true, &on_runs);

  // Count what the enabled runs actually recorded — an accidentally
  // disabled recorder would otherwise make the overhead look free.
  recorder.Enable();
  recorder.Clear();
  RunClosedLoop(served);
  const size_t traced_events = recorder.Collect().size();
  recorder.Disable();
  recorder.Clear();

  const double ratio = off > 0 ? on / off : 0.0;
  const double baseline = ReadServeBaseline();
  std::printf("\nheadline: tracing off %.1f vs on %.1f pairs/s -> "
              "ratio %.3f (%.1f%% overhead), %zu events/run\n",
              off, on, ratio, (1.0 - ratio) * 100.0, traced_events);
  if (baseline > 0) {
    std::printf("context: committed BENCH_serve.json batch8 baseline "
                "%.1f pairs/s (off/baseline %.3f, not gated)\n",
                baseline, off / baseline);
  }

  std::string json = "{\n  \"bench\": \"obs_overhead\",\n";
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "  \"shape\": {\"loop\":\"closed\",\"clients\":%d,"
                "\"max_batch\":%d,\"dispatch_cost_us\":%d,"
                "\"requests_per_client\":%d,\"reps\":%d},\n",
                kClients, kMaxBatch, kDispatchCostUs, kPerClient, kReps);
  json += buffer;
  json += "  \"runs\": {\"tracing_off\":[";
  AppendRuns(off_runs, &json);
  json += "],\"tracing_on\":[";
  AppendRuns(on_runs, &json);
  json += "]},\n";
  std::snprintf(buffer, sizeof(buffer),
                "  \"headline\": {\"off_throughput\":%.1f,"
                "\"on_throughput\":%.1f,\"on_off_ratio\":%.3f,"
                "\"tracing_overhead_pct\":%.1f,"
                "\"trace_events_per_run\":%zu,"
                "\"serve_baseline_batch8_throughput\":%.1f,"
                "\"min_on_off_ratio\":%.2f}\n}\n",
                off, on, ratio, (1.0 - ratio) * 100.0, traced_events,
                baseline, kMinOnOffRatio);
  json += buffer;

  FILE* out = std::fopen("BENCH_obs.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_obs.json\n");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote BENCH_obs.json\n");
  return ratio >= kMinOnOffRatio ? 0 : 1;
}
