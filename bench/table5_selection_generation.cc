// Reproduces Table 5: fine-tuning with example selection and generation
// (Section 5). Llama 8B rows cover the WDC size sweep, the filtered sets,
// the synthetic sets, and error-based selection; GPT-4o-mini covers the
// subset the paper ran (the rest was skipped for cost there). Deltas are
// against fine-tuning on WDC-small.

#include "bench_common.h"
#include "select/error_selection.h"
#include "select/filters.h"
#include "select/generation.h"

using namespace tailormatch;
using bench::Cell;
using data::BenchmarkId;
using llm::ModelFamily;

namespace {

const std::vector<BenchmarkId> kColumns = {
    BenchmarkId::kWdcSmall, BenchmarkId::kAbtBuy, BenchmarkId::kAmazonGoogle,
    BenchmarkId::kWalmartAmazon, BenchmarkId::kDblpAcm,
    BenchmarkId::kDblpScholar};

}  // namespace

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader(
      "Table 5: example selection and generation (deltas vs fine-tuning on "
      "WDC-small)",
      env);

  llm::TeacherLlm teacher;
  const data::Benchmark& wdc = env.benchmark(BenchmarkId::kWdcSmall);
  const data::BenchmarkSpec spec = data::GetBenchmarkSpec(BenchmarkId::kWdcSmall);

  // Build the derived training sets once (teacher filtering + generation).
  data::Dataset wdc_filtered = select::ErrorBasedFilter(wdc.train, teacher);
  data::Dataset wdc_filtered_rel =
      select::RelevancyFilter(wdc_filtered, teacher);
  data::Dataset syn = select::BuildSyntheticSet(wdc.train, spec);
  data::Dataset syn_filtered = select::ErrorBasedFilter(syn, teacher);
  data::Dataset syn_filtered_rel =
      select::RelevancyFilter(syn_filtered, teacher);

  struct TrainSetRow {
    std::string label;
    const data::Dataset* train;  // null => special handling
  };

  eval::TablePrinter table({"Model", "Train set", "WDC", "A-B", "A-G", "W-A",
                            "In-dom Gain", "D-A", "D-S", "Cross Gain"});

  const std::vector<BenchmarkId> product_targets =
      core::InDomainTargets(BenchmarkId::kWdcSmall);
  const std::vector<BenchmarkId> scholar_targets =
      core::CrossDomainTargets(BenchmarkId::kWdcSmall);

  struct FamilyPlan {
    ModelFamily family;
    bool full_sweep;  // mini only runs the subset the paper ran
  };
  for (const FamilyPlan plan :
       {FamilyPlan{ModelFamily::kLlama8B, true},
        FamilyPlan{ModelFamily::kGpt4oMini, false}}) {
    bench::Stopwatch watch;
    std::map<BenchmarkId, double> zero;
    for (BenchmarkId id : kColumns) zero[id] = env.ZeroShotF1(plan.family, id);
    std::map<BenchmarkId, double> specialized;
    for (BenchmarkId target : product_targets) {
      specialized[target] =
          env.TestF1(*env.FineTuneOn(plan.family, target, "t2"), target);
    }
    for (BenchmarkId target : scholar_targets) {
      specialized[target] =
          env.TestF1(*env.FineTuneOn(plan.family, target, "t2"), target);
    }

    std::vector<std::pair<std::string, const data::Dataset*>> rows;
    rows.emplace_back("WDC-small", &wdc.train);
    if (plan.full_sweep) {
      rows.emplace_back("WDC-medium",
                        &env.benchmark(BenchmarkId::kWdcMedium).train);
      rows.emplace_back("WDC-large",
                        &env.benchmark(BenchmarkId::kWdcLarge).train);
    }
    rows.emplace_back("WDC-s-filter", &wdc_filtered);
    if (plan.full_sweep) {
      rows.emplace_back("WDC-s-filter-rel", &wdc_filtered_rel);
    }
    rows.emplace_back("Syn-filter", &syn_filtered);
    if (plan.full_sweep) {
      rows.emplace_back("Syn-filter-rel", &syn_filtered_rel);
    }

    std::map<std::string, std::map<BenchmarkId, double>> results;
    for (const auto& [label, train] : rows) {
      core::FineTuneOptions options;
      options.valid_max_pairs = env.context().valid_max_pairs;
      auto model = env.FineTune(plan.family, *train, wdc.valid, options,
                                "t5_" + label);
      for (BenchmarkId id : kColumns) {
        results[label][id] = env.TestF1(*model, id);
      }
      TM_LOG(Info) << llm::ModelFamilyTableName(plan.family) << " / " << label
                   << " done (" << watch.seconds() << "s elapsed)";
    }

    // Error-based example selection (Llama only; Section 5.3 notes OpenAI
    // fine-tuning limitations prevent it for the GPT series).
    if (plan.full_sweep) {
      const data::Benchmark& large = env.benchmark(BenchmarkId::kWdcLarge);
      const llm::FamilyProfile profile = llm::GetFamilyProfile(plan.family);
      select::ErrorSelectionOptions options;
      options.rounds = 5;
      options.added_per_round = wdc.train.size();
      options.epochs_per_round = 5;
      options.train.learning_rate = profile.finetune_lr;
      options.train.batch_size = profile.batch_size;
      options.lora.rank = profile.lora_rank;
      options.lora.alpha = profile.lora_alpha;
      options.lora.dropout = profile.lora_dropout;
      options.valid_max_pairs = env.context().valid_max_pairs;
      select::ErrorSelectionResult selection = select::RunErrorBasedSelection(
          env.zero_shot(plan.family), wdc.train, large.train, wdc.valid,
          options);
      for (BenchmarkId id : kColumns) {
        results["WDC-s-err-sel"][id] = env.TestF1(*selection.model, id);
      }
      rows.emplace_back("WDC-s-err-sel", nullptr);
      TM_LOG(Info) << "error-based selection done: best round "
                   << selection.best_round << " (" << watch.seconds()
                   << "s elapsed)";
    }

    const std::map<BenchmarkId, double>& baseline = results["WDC-small"];
    // Zero-shot row.
    {
      std::vector<std::string> row = {llm::ModelFamilyTableName(plan.family),
                                      "Zero-shot"};
      for (BenchmarkId id : kColumns) {
        row.push_back(Cell(zero.at(id), zero.at(id) - baseline.at(id)));
        if (id == BenchmarkId::kWalmartAmazon) row.push_back("-");
      }
      row.push_back("-");
      table.AddRow(row);
    }
    for (const auto& [label, unused_train] : rows) {
      const auto& f1 = results[label];
      std::vector<std::string> row = {llm::ModelFamilyTableName(plan.family),
                                      label};
      for (BenchmarkId id :
           {BenchmarkId::kWdcSmall, BenchmarkId::kAbtBuy,
            BenchmarkId::kAmazonGoogle, BenchmarkId::kWalmartAmazon}) {
        row.push_back(Cell(f1.at(id), f1.at(id) - baseline.at(id)));
      }
      row.push_back(bench::GainCell(core::ComputeTransferGain(
          product_targets, f1, zero, specialized)));
      for (BenchmarkId id :
           {BenchmarkId::kDblpAcm, BenchmarkId::kDblpScholar}) {
        row.push_back(Cell(f1.at(id), f1.at(id) - baseline.at(id)));
      }
      row.push_back(bench::GainCell(core::ComputeTransferGain(
          scholar_targets, f1, zero, specialized)));
      table.AddRow(row);
    }
    table.AddSeparator();
  }

  table.Print();
  std::printf(
      "\nPaper shapes to check: filtering and generation+filtering lift\n"
      "Llama 8B above the WDC-small baseline (quality beats quantity: the\n"
      "filtered small sets rival or beat WDC-large); error-based selection\n"
      "gives Llama its best no-transfer score; GPT-4o-mini does not\n"
      "benefit from filtration.\n");
  return 0;
}
