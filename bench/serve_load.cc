// Load generator for the online serving subsystem (src/serve/).
//
//   bench_serve_load                       run the sweeps, write BENCH_serve.json
//   bench_serve_load --write-tiny-ckpt P   write a tiny framed checkpoint to P
//   bench_serve_load --connect PORT        JSONL smoke test against a running
//                                          `tailormatch serve --port PORT`
//                                          (add --shutdown to stop the server)
//
// Two experiment shapes, both sweeping max_batch:
//   closed loop: 8 client threads, one outstanding request each — the
//     arrival rate adapts to service rate, the way interactive callers do.
//   open loop: one thread bursts N requests without waiting — the
//     queue-pressure shape of an offline backfill pushed through the
//     online path.
//
// Each shape runs under two dispatch-cost profiles: 0 (the raw in-process
// forward, microseconds — batching is roughly neutral there) and 200us per
// dispatch (models a backend that charges per dispatch: accelerator kernel
// launch or hosted-API round trip — the cost the paper's batch API
// amortizes; see MicroBatcherConfig::dispatch_cost_us). The headline
// claim — max_batch >= 8 at >= 2x the throughput of max_batch == 1 with 8
// concurrent clients — is evaluated under the 200us profile.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/matcher.h"
#include "llm/sim_llm.h"
#include "serve/micro_batcher.h"
#include "serve/model_registry.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

using namespace tailormatch;

namespace {

using Clock = std::chrono::steady_clock;

// A tiny but real SimLlm: big enough to tokenize product-style prompts,
// small enough that a sweep finishes in seconds on one core.
llm::SimLlm MakeServeModel() {
  std::vector<std::string> corpus;
  for (int i = 0; i < 40; ++i) {
    corpus.push_back("do the two entity descriptions refer to the same "
                     "real-world product entity 1 widget pro model " +
                     std::to_string(i) + " entity 2 widget pro model " +
                     std::to_string(i + 1));
  }
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1200, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.max_seq = 32;
  config.init_seed = 11;
  return llm::SimLlm(config, std::move(tokenizer));
}

// Distinct pairs so the result cache (off in these runs anyway) could never
// flatter the numbers.
data::EntityPair MakePair(int i) {
  return core::MakeSurfacePair(
      "widget pro model " + std::to_string(i),
      "widget pro model " + std::to_string(i % 7 == 0 ? i : i + 1),
      data::Domain::kProduct);
}

struct RunResult {
  std::string shape;
  int dispatch_cost_us = 0;
  int max_batch = 0;
  int clients = 0;
  int requests = 0;
  double elapsed_s = 0.0;
  double throughput = 0.0;  // pairs/sec
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
};

double Percentile(std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      pct / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

void FinishRun(std::vector<double>& latencies, RunResult* run) {
  std::sort(latencies.begin(), latencies.end());
  run->requests = static_cast<int>(latencies.size());
  run->throughput = run->elapsed_s > 0
                        ? static_cast<double>(run->requests) / run->elapsed_s
                        : 0.0;
  run->p50_ms = Percentile(latencies, 50);
  run->p95_ms = Percentile(latencies, 95);
  run->p99_ms = Percentile(latencies, 99);
}

// 8 interactive clients, one outstanding request each.
RunResult RunClosedLoop(const std::shared_ptr<const serve::ServedModel>& model,
                        int max_batch, int dispatch_cost_us, int clients,
                        int requests_per_client) {
  serve::MicroBatcherConfig config;
  config.max_batch = max_batch;
  config.max_wait_us = 200;
  config.dispatch_cost_us = dispatch_cost_us;
  config.batch_parallelism = 1;  // isolate the batching policy itself
  serve::MicroBatcher batcher(config);

  RunResult run;
  run.shape = "closed_loop";
  run.dispatch_cost_us = dispatch_cost_us;
  run.max_batch = max_batch;
  run.clients = clients;

  std::vector<std::vector<double>> latencies(clients);
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(requests_per_client);
      for (int i = 0; i < requests_per_client; ++i) {
        const auto sent = Clock::now();
        serve::ServeResult result = batcher.SubmitAndWait(
            model, prompt::PromptTemplate::kDefault,
            MakePair(c * requests_per_client + i));
        if (result.outcome != serve::RequestOutcome::kOk) continue;
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - sent)
                .count());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  run.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  batcher.Shutdown();

  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  FinishRun(all, &run);
  return run;
}

// One thread bursts `total` requests, then waits for everything.
RunResult RunOpenLoop(const std::shared_ptr<const serve::ServedModel>& model,
                      int max_batch, int dispatch_cost_us, int total) {
  serve::MicroBatcherConfig config;
  config.max_batch = max_batch;
  config.max_wait_us = 200;
  config.queue_capacity = total + 1;  // backfill shape: admit the whole burst
  config.dispatch_cost_us = dispatch_cost_us;
  config.batch_parallelism = 1;
  serve::MicroBatcher batcher(config);

  RunResult run;
  run.shape = "open_loop";
  run.dispatch_cost_us = dispatch_cost_us;
  run.max_batch = max_batch;
  run.clients = 1;

  std::vector<std::future<serve::ServeResult>> futures;
  futures.reserve(total);
  std::vector<Clock::time_point> sent(total);
  const auto start = Clock::now();
  for (int i = 0; i < total; ++i) {
    sent[i] = Clock::now();
    futures.push_back(batcher.Submit(model, prompt::PromptTemplate::kDefault,
                                     MakePair(i)));
  }
  std::vector<double> latencies;
  latencies.reserve(total);
  for (int i = 0; i < total; ++i) {
    serve::ServeResult result = futures[i].get();
    if (result.outcome != serve::RequestOutcome::kOk) continue;
    latencies.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - sent[i])
            .count());
  }
  run.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  batcher.Shutdown();
  FinishRun(latencies, &run);
  return run;
}

void AppendRunJson(const RunResult& run, std::string* out) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"shape\":\"%s\",\"dispatch_cost_us\":%d,\"max_batch\":%d,"
      "\"clients\":%d,\"requests\":%d,\"elapsed_s\":%.4f,"
      "\"throughput_pairs_per_s\":%.1f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,"
      "\"p99_ms\":%.3f}",
      run.shape.c_str(), run.dispatch_cost_us, run.max_batch, run.clients,
      run.requests, run.elapsed_s, run.throughput, run.p50_ms, run.p95_ms,
      run.p99_ms);
  *out += buffer;
}

int RunSweeps() {
  llm::SimLlm model_value = MakeServeModel();
  auto served = std::make_shared<const serve::ServedModel>(serve::ServedModel{
      "bench", 1, "<memory>",
      std::shared_ptr<const llm::SimLlm>(&model_value,
                                         [](const llm::SimLlm*) {})});

  const int kClients = 8;
  const int kPerClient = 250;
  const int kBurst = 2000;
  const std::vector<int> batch_sizes = {1, 2, 4, 8, 16};
  const std::vector<int> dispatch_profiles = {0, 200};

  std::vector<RunResult> runs;
  std::printf("%-12s %9s %9s %8s %12s %8s %8s %8s\n", "shape", "dispatch",
              "max_batch", "clients", "pairs/s", "p50ms", "p95ms", "p99ms");
  for (int dispatch : dispatch_profiles) {
    for (int max_batch : batch_sizes) {
      RunResult closed =
          RunClosedLoop(served, max_batch, dispatch, kClients, kPerClient);
      runs.push_back(closed);
      std::printf("%-12s %7dus %9d %8d %12.1f %8.3f %8.3f %8.3f\n",
                  closed.shape.c_str(), dispatch, max_batch, kClients,
                  closed.throughput, closed.p50_ms, closed.p95_ms,
                  closed.p99_ms);
      RunResult open = RunOpenLoop(served, max_batch, dispatch, kBurst);
      runs.push_back(open);
      std::printf("%-12s %7dus %9d %8d %12.1f %8.3f %8.3f %8.3f\n",
                  open.shape.c_str(), dispatch, max_batch, 1, open.throughput,
                  open.p50_ms, open.p95_ms, open.p99_ms);
    }
  }

  // Headline: batched vs unbatched closed-loop throughput under the
  // dispatch-cost profile (the regime batching exists for).
  double batch1 = 0.0, batch8 = 0.0, batch8_p99 = 0.0;
  for (const RunResult& run : runs) {
    if (run.shape != "closed_loop" || run.dispatch_cost_us != 200) continue;
    if (run.max_batch == 1) batch1 = run.throughput;
    if (run.max_batch == 8) {
      batch8 = run.throughput;
      batch8_p99 = run.p99_ms;
    }
  }
  const double speedup = batch1 > 0 ? batch8 / batch1 : 0.0;
  std::printf("\nheadline: closed-loop @200us dispatch, %d clients: "
              "batch8 %.1f vs batch1 %.1f pairs/s -> %.2fx (p99 %.3fms)\n",
              kClients, batch8, batch1, speedup, batch8_p99);

  std::string json = "{\n  \"bench\": \"serve_load\",\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    AppendRunJson(runs[i], &json);
    json += i + 1 < runs.size() ? ",\n" : "\n";
  }
  char headline[256];
  std::snprintf(headline, sizeof(headline),
                "  ],\n  \"headline\": {\"shape\":\"closed_loop\","
                "\"dispatch_cost_us\":200,\"clients\":%d,"
                "\"batch1_throughput\":%.1f,\"batch8_throughput\":%.1f,"
                "\"speedup\":%.2f,\"batch8_p99_ms\":%.3f}\n}\n",
                kClients, batch1, batch8, speedup, batch8_p99);
  json += headline;

  FILE* out = std::fopen("BENCH_serve.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote BENCH_serve.json (%zu runs)\n", runs.size());
  return speedup >= 2.0 ? 0 : 1;
}

// --connect PORT: drive a running JSONL server over TCP, verify responses.
int RunSmoke(int port, bool shutdown_server) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("connect");
    ::close(fd);
    return 1;
  }

  std::string request;
  for (int i = 0; i < 16; ++i) {
    request += "{\"id\":\"" + std::to_string(i) +
               "\",\"left\":\"widget pro model " + std::to_string(i) +
               "\",\"right\":\"widget pro model " + std::to_string(i + 1) +
               "\"}\n";
  }
  request += "{\"op\":\"stats\"}\n";
  request += shutdown_server ? "{\"op\":\"shutdown\"}\n" : "{\"op\":\"quit\"}\n";
  const char* p = request.data();
  size_t remaining = request.size();
  while (remaining > 0) {
    ssize_t n = ::write(fd, p, remaining);
    if (n <= 0) {
      std::perror("write");
      ::close(fd);
      return 1;
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }

  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  int ok_lines = 0;
  for (const std::string& line : Split(response, '\n')) {
    if (line.find("\"outcome\":\"ok\"") != std::string::npos) ++ok_lines;
  }
  const bool saw_stats = response.find("\"op\":\"stats\"") != std::string::npos;
  // 16 match responses + the quit/shutdown ack.
  if (ok_lines < 17 || !saw_stats) {
    std::fprintf(stderr, "smoke failed: %d ok lines, stats=%d\nresponse:\n%s",
                 ok_lines, saw_stats ? 1 : 0, response.c_str());
    return 1;
  }
  std::printf("smoke ok: %d ok responses, stats present\n", ok_lines);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--write-tiny-ckpt" && i + 1 < argc) {
      llm::SimLlm model = MakeServeModel();
      Status status = model.SaveCheckpoint(argv[i + 1]);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", argv[i + 1]);
      return 0;
    }
    if (arg == "--connect" && i + 1 < argc) {
      bool shutdown_server = false;
      for (int j = 1; j < argc; ++j) {
        if (std::string(argv[j]) == "--shutdown") shutdown_server = true;
      }
      return RunSmoke(std::atoi(argv[i + 1]), shutdown_server);
    }
  }
  return RunSweeps();
}
