// Load generator for the online serving subsystem (src/serve/).
//
//   bench_serve_load                       run the sweeps, write BENCH_serve.json
//   bench_serve_load --fleet               run the multi-process fleet sweeps
//                                          (scaling, crash drill, autotune vs
//                                          fixed), write BENCH_fleet.json
//   bench_serve_load --chaos               replay a seeded fault schedule
//                                          (>= 5 SIGKILLs + pauses + network
//                                          faults) against a 3-worker fleet
//                                          under load, baseline vs failover
//                                          arms, write BENCH_chaos.json
//   bench_serve_load --infer-gate          gated planned-vs-dynamic batched
//                                          throughput check (exit 0 iff the
//                                          planned executor is >= 2x)
//   bench_serve_load --seed N              seed for the open-loop arrival /
//                                          chaos schedules (default 20260809)
//   bench_serve_load --write-tiny-ckpt P   write a tiny framed checkpoint to P
//   bench_serve_load --connect PORT        JSONL smoke test against a running
//                                          `tailormatch serve --port PORT`
//                                          (add --shutdown to stop the server)
//
// Two experiment shapes, both sweeping max_batch:
//   closed loop: 8 client threads, one outstanding request each — the
//     arrival rate adapts to service rate, the way interactive callers do.
//   open loop: one thread bursts N requests without waiting — the
//     queue-pressure shape of an offline backfill pushed through the
//     online path.
//
// Each shape runs under two dispatch-cost profiles: 0 (the raw in-process
// forward, microseconds — batching is roughly neutral there) and 200us per
// dispatch (models a backend that charges per dispatch: accelerator kernel
// launch or hosted-API round trip — the cost the paper's batch API
// amortizes; see MicroBatcherConfig::dispatch_cost_us). The headline
// claim — max_batch >= 8 at >= 2x the throughput of max_batch == 1 with 8
// concurrent clients — is evaluated under the 200us profile.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/matcher.h"
#include "llm/infer_engine.h"
#include "llm/sim_llm.h"
#include "obs/metrics.h"
#include "serve/chaos.h"
#include "serve/fleet.h"
#include "serve/micro_batcher.h"
#include "serve/model_registry.h"
#include "serve/net_util.h"
#include "text/tokenizer.h"
#include "util/fault.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/string_util.h"

using namespace tailormatch;

namespace {

using Clock = std::chrono::steady_clock;

// A tiny but real SimLlm: big enough to tokenize product-style prompts,
// small enough that a sweep finishes in seconds on one core.
llm::SimLlm MakeServeModel() {
  std::vector<std::string> corpus;
  for (int i = 0; i < 40; ++i) {
    corpus.push_back("do the two entity descriptions refer to the same "
                     "real-world product entity 1 widget pro model " +
                     std::to_string(i) + " entity 2 widget pro model " +
                     std::to_string(i + 1));
  }
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 1200, 1);
  llm::ModelConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.max_seq = 32;
  config.init_seed = 11;
  return llm::SimLlm(config, std::move(tokenizer));
}

// Distinct pairs so the result cache (off in these runs anyway) could never
// flatter the numbers.
data::EntityPair MakePair(int i) {
  return core::MakeSurfacePair(
      "widget pro model " + std::to_string(i),
      "widget pro model " + std::to_string(i % 7 == 0 ? i : i + 1),
      data::Domain::kProduct);
}

struct RunResult {
  std::string shape;
  int dispatch_cost_us = 0;
  int max_batch = 0;
  int clients = 0;
  int requests = 0;
  double elapsed_s = 0.0;
  double throughput = 0.0;  // pairs/sec
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
};

double Percentile(std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      pct / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

void FinishRun(std::vector<double>& latencies, RunResult* run) {
  std::sort(latencies.begin(), latencies.end());
  run->requests = static_cast<int>(latencies.size());
  run->throughput = run->elapsed_s > 0
                        ? static_cast<double>(run->requests) / run->elapsed_s
                        : 0.0;
  run->p50_ms = Percentile(latencies, 50);
  run->p95_ms = Percentile(latencies, 95);
  run->p99_ms = Percentile(latencies, 99);
}

// 8 interactive clients, one outstanding request each.
RunResult RunClosedLoop(const std::shared_ptr<const serve::ServedModel>& model,
                        int max_batch, int dispatch_cost_us, int clients,
                        int requests_per_client) {
  serve::MicroBatcherConfig config;
  config.max_batch = max_batch;
  config.max_wait_us = 200;
  config.dispatch_cost_us = dispatch_cost_us;
  config.batch_parallelism = 1;  // isolate the batching policy itself
  serve::MicroBatcher batcher(config);

  RunResult run;
  run.shape = "closed_loop";
  run.dispatch_cost_us = dispatch_cost_us;
  run.max_batch = max_batch;
  run.clients = clients;

  std::vector<std::vector<double>> latencies(clients);
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(requests_per_client);
      for (int i = 0; i < requests_per_client; ++i) {
        const auto sent = Clock::now();
        serve::ServeResult result = batcher.SubmitAndWait(
            model, prompt::PromptTemplate::kDefault,
            MakePair(c * requests_per_client + i));
        if (result.outcome != serve::RequestOutcome::kOk) continue;
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - sent)
                .count());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  run.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  batcher.Shutdown();

  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  FinishRun(all, &run);
  return run;
}

// One thread bursts `total` requests, then waits for everything.
RunResult RunOpenLoop(const std::shared_ptr<const serve::ServedModel>& model,
                      int max_batch, int dispatch_cost_us, int total) {
  serve::MicroBatcherConfig config;
  config.max_batch = max_batch;
  config.max_wait_us = 200;
  config.queue_capacity = total + 1;  // backfill shape: admit the whole burst
  config.dispatch_cost_us = dispatch_cost_us;
  config.batch_parallelism = 1;
  serve::MicroBatcher batcher(config);

  RunResult run;
  run.shape = "open_loop";
  run.dispatch_cost_us = dispatch_cost_us;
  run.max_batch = max_batch;
  run.clients = 1;

  std::vector<std::future<serve::ServeResult>> futures;
  futures.reserve(total);
  std::vector<Clock::time_point> sent(total);
  const auto start = Clock::now();
  for (int i = 0; i < total; ++i) {
    sent[i] = Clock::now();
    futures.push_back(batcher.Submit(model, prompt::PromptTemplate::kDefault,
                                     MakePair(i)));
  }
  std::vector<double> latencies;
  latencies.reserve(total);
  for (int i = 0; i < total; ++i) {
    serve::ServeResult result = futures[i].get();
    if (result.outcome != serve::RequestOutcome::kOk) continue;
    latencies.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - sent[i])
            .count());
  }
  run.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  batcher.Shutdown();
  FinishRun(latencies, &run);
  return run;
}

void AppendRunJson(const RunResult& run, std::string* out) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"shape\":\"%s\",\"dispatch_cost_us\":%d,\"max_batch\":%d,"
      "\"clients\":%d,\"requests\":%d,\"elapsed_s\":%.4f,"
      "\"throughput_pairs_per_s\":%.1f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,"
      "\"p99_ms\":%.3f}",
      run.shape.c_str(), run.dispatch_cost_us, run.max_batch, run.clients,
      run.requests, run.elapsed_s, run.throughput, run.p50_ms, run.p95_ms,
      run.p99_ms);
  *out += buffer;
}

int RunSweeps() {
  llm::SimLlm model_value = MakeServeModel();
  auto served = std::make_shared<const serve::ServedModel>(serve::ServedModel{
      "bench", 1, "<memory>",
      std::shared_ptr<const llm::SimLlm>(&model_value,
                                         [](const llm::SimLlm*) {})});

  const int kClients = 8;
  const int kPerClient = 250;
  const int kBurst = 2000;
  const std::vector<int> batch_sizes = {1, 2, 4, 8, 16};
  const std::vector<int> dispatch_profiles = {0, 200};

  std::vector<RunResult> runs;
  std::printf("%-12s %9s %9s %8s %12s %8s %8s %8s\n", "shape", "dispatch",
              "max_batch", "clients", "pairs/s", "p50ms", "p95ms", "p99ms");
  for (int dispatch : dispatch_profiles) {
    for (int max_batch : batch_sizes) {
      RunResult closed =
          RunClosedLoop(served, max_batch, dispatch, kClients, kPerClient);
      runs.push_back(closed);
      std::printf("%-12s %7dus %9d %8d %12.1f %8.3f %8.3f %8.3f\n",
                  closed.shape.c_str(), dispatch, max_batch, kClients,
                  closed.throughput, closed.p50_ms, closed.p95_ms,
                  closed.p99_ms);
      RunResult open = RunOpenLoop(served, max_batch, dispatch, kBurst);
      runs.push_back(open);
      std::printf("%-12s %7dus %9d %8d %12.1f %8.3f %8.3f %8.3f\n",
                  open.shape.c_str(), dispatch, max_batch, 1, open.throughput,
                  open.p50_ms, open.p95_ms, open.p99_ms);
    }
  }

  // Executor A/B: one worker scoring one request at a time through the
  // served model — the single-worker regime the planned executor's headline
  // is defined over (the fleet rows above keep contention and batching out
  // of this measurement). Dynamic runs first so the planned arm's counter
  // deltas are cleanly attributable.
  std::vector<std::string> ab_prompts;
  for (int i = 0; i < 64; ++i) {
    ab_prompts.push_back(
        "do the two entity descriptions refer to the same real-world product "
        "entity 1 widget pro model " +
        std::to_string(i) + " entity 2 widget pro model " +
        std::to_string(i + 1));
  }
  const auto run_executor_arm = [&](llm::InferExecutorMode mode_value,
                                    const char* shape) {
    llm::InferExecutorModeScope mode(mode_value);
    RunResult run;
    run.shape = shape;
    run.dispatch_cost_us = 0;
    run.max_batch = 1;
    run.clients = 1;
    const int kRequests = 4000;
    // Warm plan + prefix caches so the measured window is steady state.
    for (size_t i = 0; i < ab_prompts.size(); ++i) {
      (void)served->model->PredictMatchProbability(ab_prompts[i]);
    }
    std::vector<double> latencies;
    latencies.reserve(kRequests);
    const auto start = Clock::now();
    for (int i = 0; i < kRequests; ++i) {
      const auto sent = Clock::now();
      (void)served->model->PredictMatchProbability(
          ab_prompts[static_cast<size_t>(i) % ab_prompts.size()]);
      latencies.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - sent)
              .count());
    }
    run.elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    FinishRun(latencies, &run);
    return run;
  };
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  RunResult exec_dynamic =
      run_executor_arm(llm::InferExecutorMode::kDynamic, "executor_dynamic");
  const int64_t hits_before =
      metrics.GetCounter("serve.prefix_cache.hits").value();
  const int64_t misses_before =
      metrics.GetCounter("serve.prefix_cache.misses").value();
  const int64_t planned_before =
      metrics.GetCounter("serve.infer.planned_forwards").value();
  const int64_t captures_before =
      metrics.GetCounter("serve.infer.plan_captures").value();
  RunResult exec_planned =
      run_executor_arm(llm::InferExecutorMode::kPlanned, "executor_planned");
  const int64_t prefix_hits =
      metrics.GetCounter("serve.prefix_cache.hits").value() - hits_before;
  const int64_t prefix_misses =
      metrics.GetCounter("serve.prefix_cache.misses").value() - misses_before;
  const int64_t planned_forwards =
      metrics.GetCounter("serve.infer.planned_forwards").value() -
      planned_before;
  const int64_t plan_captures =
      metrics.GetCounter("serve.infer.plan_captures").value() - captures_before;
  const double arena_bytes = metrics.GetGauge("serve.arena.bytes").value();
  runs.push_back(exec_dynamic);
  runs.push_back(exec_planned);
  for (const RunResult* run : {&exec_dynamic, &exec_planned}) {
    std::printf("%-16s %3dus %9d %8d %12.1f %8.3f %8.3f %8.3f\n",
                run->shape.c_str(), 0, 1, 1, run->throughput,
                run->p50_ms, run->p95_ms, run->p99_ms);
  }
  const double executor_speedup = exec_dynamic.throughput > 0
                                      ? exec_planned.throughput /
                                            exec_dynamic.throughput
                                      : 0.0;
  std::printf("executor headline: planned %.1f vs dynamic %.1f pairs/s -> "
              "%.2fx (p99 %.3f vs %.3f ms; prefix %lld hits / %lld misses, "
              "%lld planned forwards, %lld captures)\n",
              exec_planned.throughput, exec_dynamic.throughput,
              executor_speedup, exec_planned.p99_ms, exec_dynamic.p99_ms,
              static_cast<long long>(prefix_hits),
              static_cast<long long>(prefix_misses),
              static_cast<long long>(planned_forwards),
              static_cast<long long>(plan_captures));

  // Headline: batched vs unbatched closed-loop throughput under the
  // dispatch-cost profile (the regime batching exists for).
  double batch1 = 0.0, batch8 = 0.0, batch8_p99 = 0.0;
  for (const RunResult& run : runs) {
    if (run.shape != "closed_loop" || run.dispatch_cost_us != 200) continue;
    if (run.max_batch == 1) batch1 = run.throughput;
    if (run.max_batch == 8) {
      batch8 = run.throughput;
      batch8_p99 = run.p99_ms;
    }
  }
  const double speedup = batch1 > 0 ? batch8 / batch1 : 0.0;
  std::printf("\nheadline: closed-loop @200us dispatch, %d clients: "
              "batch8 %.1f vs batch1 %.1f pairs/s -> %.2fx (p99 %.3fms)\n",
              kClients, batch8, batch1, speedup, batch8_p99);

  std::string json = "{\n  \"bench\": \"serve_load\",\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    AppendRunJson(runs[i], &json);
    json += i + 1 < runs.size() ? ",\n" : "\n";
  }
  char headline[1024];
  std::snprintf(
      headline, sizeof(headline),
      "  ],\n  \"headline\": {\"shape\":\"closed_loop\","
      "\"dispatch_cost_us\":200,\"clients\":%d,"
      "\"batch1_throughput\":%.1f,\"batch8_throughput\":%.1f,"
      "\"speedup\":%.2f,\"batch8_p99_ms\":%.3f},\n"
      "  \"infer\": {\"dynamic_throughput\":%.1f,\"planned_throughput\":%.1f,"
      "\"executor_speedup\":%.2f,\"dynamic_p99_ms\":%.3f,"
      "\"planned_p99_ms\":%.3f,\"prefix_cache_hits\":%lld,"
      "\"prefix_cache_misses\":%lld,\"planned_forwards\":%lld,"
      "\"plan_captures\":%lld,\"arena_bytes\":%.0f}\n}\n",
      kClients, batch1, batch8, speedup, batch8_p99, exec_dynamic.throughput,
      exec_planned.throughput, executor_speedup, exec_dynamic.p99_ms,
      exec_planned.p99_ms, static_cast<long long>(prefix_hits),
      static_cast<long long>(prefix_misses),
      static_cast<long long>(planned_forwards),
      static_cast<long long>(plan_captures), arena_bytes);
  json += headline;

  FILE* out = std::fopen("BENCH_serve.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote BENCH_serve.json (%zu runs)\n", runs.size());
  // Two gates: the micro-batching headline and the planned executor's >= 2x
  // single-worker throughput at no-worse p99.
  const bool p99_held = exec_planned.p99_ms <= exec_dynamic.p99_ms * 1.10;
  return speedup >= 2.0 && executor_speedup >= 2.0 && p99_held ? 0 : 1;
}

// --infer-gate: direct model-level batched throughput, planned vs dynamic,
// with no batcher in the way — the check-infer target's CI gate. Exit 0 iff
// the planned arena executor sustains >= 2x the dynamic autograd forward.
int RunInferGate() {
  llm::SimLlm model = MakeServeModel();
  std::vector<std::string> prompts;
  for (int i = 0; i < 64; ++i) {
    prompts.push_back(
        "do the two entity descriptions refer to the same real-world product "
        "entity 1 widget pro model " +
        std::to_string(i) + " entity 2 widget pro model " +
        std::to_string(i + 1));
  }
  const auto run_arm = [&](llm::InferExecutorMode mode) {
    llm::InferExecutorModeScope scope(mode);
    (void)model.PredictMatchProbabilities(prompts);  // warmup (plan capture)
    const auto start = Clock::now();
    int scored = 0;
    const int kIters = 30;
    for (int iter = 0; iter < kIters; ++iter) {
      scored += static_cast<int>(model.PredictMatchProbabilities(prompts).size());
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    return elapsed > 0 ? static_cast<double>(scored) / elapsed : 0.0;
  };
  const double dynamic_tput = run_arm(llm::InferExecutorMode::kDynamic);
  const double planned_tput = run_arm(llm::InferExecutorMode::kPlanned);
  const double speedup = dynamic_tput > 0 ? planned_tput / dynamic_tput : 0.0;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  std::printf(
      "infer-gate: planned %.0f vs dynamic %.0f pairs/s -> %.2fx "
      "(prefix hits %lld, misses %lld, captures %lld)\n",
      planned_tput, dynamic_tput, speedup,
      static_cast<long long>(
          metrics.GetCounter("serve.prefix_cache.hits").value()),
      static_cast<long long>(
          metrics.GetCounter("serve.prefix_cache.misses").value()),
      static_cast<long long>(
          metrics.GetCounter("serve.infer.plan_captures").value()));
  if (speedup < 2.0) {
    std::fprintf(stderr, "infer-gate FAILED: %.2fx < 2.0x\n", speedup);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Fleet sweeps (--fleet): the multi-process serve fleet measured through its
// real front door — TCP to the router, router to forked workers. Three
// experiments, written to BENCH_fleet.json:
//   scaling      closed-loop throughput at 1/2/4 workers under the 200us
//                dispatch-cost profile (gate: >= 2.5x at 4 vs 1, p99 within
//                the 50ms SLO)
//   crash        closed-loop traffic with a SIGKILL mid-run (gate: the slot
//                restarts and only the in-flight window errors)
//   diurnal      seeded open-loop arrivals on a sinusoid + burst schedule,
//                autotuned workers vs fixed batch policies (gate: autotune
//                ok-throughput >= 1.2x the worst fixed policy)
// ---------------------------------------------------------------------------

constexpr double kFleetSloP99Ms = 50.0;

// An even smaller model for the scaling sweep. There the 200us dispatch
// sleep is the quantity under test (how well N worker processes overlap
// it), so per-request forward CPU — pure noise for that question, and the
// bottleneck on a small host — is shrunk as far as the stack allows.
llm::SimLlm MakeMicroServeModel() {
  std::vector<std::string> corpus;
  for (int i = 0; i < 20; ++i) {
    corpus.push_back("w " + std::to_string(i) + " w " + std::to_string(i) +
                     " x");
  }
  text::Tokenizer tokenizer;
  tokenizer.Train(corpus, 700, 1);
  llm::ModelConfig config;
  config.dim = 8;
  config.num_heads = 1;
  config.num_layers = 1;
  config.max_seq = 16;
  config.init_seed = 11;
  return llm::SimLlm(config, std::move(tokenizer));
}

std::string MatchLine(int id) {
  return "{\"id\":\"" + std::to_string(id) + "\",\"left\":\"widget pro model " +
         std::to_string(id) + "\",\"right\":\"widget pro model " +
         std::to_string(id + 1) + "\"}\n";
}

// Minimal pairs for the scaling sweep: the quantity under test there is the
// dispatch pipeline (the 200us sleep), so per-request tokenize/forward CPU
// is kept as small as possible to stay out of the measurement.
std::string ShortMatchLine(int id) {
  return "{\"id\":\"" + std::to_string(id) + "\",\"left\":\"w " +
         std::to_string(id) + "\",\"right\":\"w " + std::to_string(id) +
         " x\"}\n";
}

struct FleetLoopResult {
  int requests = 0;
  int ok = 0;
  int errors = 0;
  double elapsed_s = 0.0;
  double throughput = 0.0;  // ok responses / sec
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
};

void FinishFleetRun(std::vector<double>& latencies, FleetLoopResult* run) {
  std::sort(latencies.begin(), latencies.end());
  run->ok = static_cast<int>(latencies.size());
  run->throughput =
      run->elapsed_s > 0 ? static_cast<double>(run->ok) / run->elapsed_s : 0.0;
  run->p50_ms = Percentile(latencies, 50);
  run->p95_ms = Percentile(latencies, 95);
  run->p99_ms = Percentile(latencies, 99);
}

// `clients` interactive TCP connections, one outstanding request each.
FleetLoopResult FleetClosedLoop(int port, int clients, int per_client,
                                int id_base, bool short_pairs = false) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<int> errors{0};
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const int fd = serve::TcpConnectLoopback(port);
      if (fd < 0) return;
      serve::FdStreamBuf buf(fd);
      std::istream in(&buf);
      std::ostream out(&buf);
      latencies[c].reserve(per_client);
      for (int i = 0; i < per_client; ++i) {
        const int id = id_base + c * per_client + i;
        const auto sent = Clock::now();
        out << (short_pairs ? ShortMatchLine(id) : MatchLine(id));
        out.flush();
        std::string line;
        if (!std::getline(in, line)) break;
        if (line.find("\"outcome\":\"ok\"") != std::string::npos) {
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - sent)
                  .count());
        } else {
          errors.fetch_add(1);
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& thread : threads) thread.join();

  FleetLoopResult run;
  run.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  run.requests = clients * per_client;
  run.errors = errors.load();
  std::vector<double> all;
  for (auto& per_conn : latencies) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  FinishFleetRun(all, &run);
  return run;
}

// Boots a fleet, runs its front in a background thread, and hands the bound
// port to `body`. Tears everything down before returning.
template <typename Body>
void WithFleet(const serve::FleetConfig& config, Body body) {
  serve::Fleet fleet(config);
  Status started = fleet.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "fleet start failed: %s\n",
                 started.ToString().c_str());
    return;
  }
  std::atomic<int> port{0};
  std::thread front([&] { fleet.ServeFront(0, &port); });
  while (port.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  body(fleet, port.load());
  fleet.Stop();
  front.join();
}

serve::FleetConfig BaseFleetConfig(const std::string& ckpt, int workers) {
  serve::FleetConfig config;
  config.num_workers = workers;
  config.checkpoint_path = ckpt;
  config.max_batch = 8;
  config.max_wait_us = 200;
  config.dispatch_cost_us = 200;
  config.cache_mb = 0;  // distinct pairs anyway; keep the numbers honest
  config.queue_capacity = 4096;
  return config;
}

// Deterministic diurnal arrival schedule: a sinusoid over `seconds` plus one
// hard burst, arrival gaps drawn exponentially from the seeded Rng.
std::vector<double> DiurnalSchedule(uint64_t seed, double seconds,
                                    double mean_rate, double swing,
                                    double period_s, int burst_size,
                                    double burst_at_s) {
  Rng rng(seed);
  std::vector<double> arrivals;
  double t = 0.0;
  while (t < seconds) {
    const double rate =
        mean_rate + swing * std::sin(2.0 * M_PI * t / period_s);
    const double u = std::max(rng.NextDouble(), 1e-12);
    t += -std::log(u) / std::max(rate, 1.0);
    if (t < seconds) arrivals.push_back(t);
  }
  for (int i = 0; i < burst_size; ++i) {
    arrivals.push_back(burst_at_s + 0.05 * rng.NextDouble());
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

// Open-loop generator against a fleet front: `conns` pipelined connections,
// each sending its slice of the schedule at the scheduled wall-clock times.
// Latency is measured from the *scheduled* arrival, so falling behind the
// schedule (an overloaded policy) shows up as queueing delay, and shed
// requests (overloaded/error responses) are excluded from ok-throughput.
FleetLoopResult FleetOpenLoop(int port, const std::vector<double>& schedule,
                              int conns) {
  std::vector<std::vector<double>> latencies(conns);
  std::atomic<int> errors{0};
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> slice;
      for (size_t i = static_cast<size_t>(c); i < schedule.size();
           i += static_cast<size_t>(conns)) {
        slice.push_back(schedule[i]);
      }
      const int fd = serve::TcpConnectLoopback(port);
      if (fd < 0) return;
      serve::FdStreamBuf buf(fd);
      std::thread reader([&] {
        std::istream in(&buf);
        std::string line;
        for (size_t i = 0; i < slice.size(); ++i) {
          if (!std::getline(in, line)) break;
          const double scheduled_ms = slice[i] * 1000.0;
          const double now_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count();
          if (line.find("\"outcome\":\"ok\"") != std::string::npos) {
            latencies[c].push_back(now_ms - scheduled_ms);
          } else {
            errors.fetch_add(1);
          }
        }
      });
      std::ostream out(&buf);
      for (size_t i = 0; i < slice.size(); ++i) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(slice[i])));
        out << MatchLine(static_cast<int>(i) * conns + c);
        out.flush();
      }
      reader.join();
      ::close(fd);
    });
  }
  for (std::thread& thread : threads) thread.join();

  FleetLoopResult run;
  run.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  run.requests = static_cast<int>(schedule.size());
  run.errors = errors.load();
  std::vector<double> all;
  for (auto& per_conn : latencies) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  FinishFleetRun(all, &run);
  return run;
}

void AppendFleetRunJson(const char* name, int workers, int max_batch,
                        const char* policy, const FleetLoopResult& run,
                        std::string* out) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"experiment\":\"%s\",\"workers\":%d,\"max_batch\":%d,"
      "\"policy\":\"%s\",\"requests\":%d,\"ok\":%d,\"errors\":%d,"
      "\"elapsed_s\":%.4f,\"ok_throughput\":%.1f,\"p50_ms\":%.3f,"
      "\"p95_ms\":%.3f,\"p99_ms\":%.3f}",
      name, workers, max_batch, policy, run.requests, run.ok, run.errors,
      run.elapsed_s, run.throughput, run.p50_ms, run.p95_ms, run.p99_ms);
  *out += buffer;
}

int RunFleetBench(uint64_t seed) {
  const std::string ckpt =
      (std::filesystem::temp_directory_path() /
       ("tm_bench_fleet_" + std::to_string(::getpid()) + ".ckpt"))
          .string();
  const std::string micro_ckpt =
      (std::filesystem::temp_directory_path() /
       ("tm_bench_fleet_micro_" + std::to_string(::getpid()) + ".ckpt"))
          .string();
  {
    llm::SimLlm model = MakeServeModel();
    Status status = model.SaveCheckpoint(ckpt);
    if (status.ok()) status = MakeMicroServeModel().SaveCheckpoint(micro_ckpt);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::string json = "{\n  \"bench\": \"serve_fleet\",\n  \"seed\": " +
                     std::to_string(seed) + ",\n  \"runs\": [\n";

  // --- scaling: closed loop, 16 clients, 1/2/4 workers -------------------
  // max_batch is pinned to 1 here so the measured quantity is PROCESS
  // scaling of the dispatch pipeline: each request pays the full 200us
  // dispatch cost, and more workers overlap more of those dispatches (the
  // within-worker batching win is BENCH_serve.json's story). A single
  // serial worker is dispatch-bound; N workers overlap N dispatch sleeps.
  std::printf("%-10s %7s %9s %8s %12s %8s %8s %8s %7s\n", "experiment",
              "workers", "max_batch", "clients", "ok/s", "p50ms", "p95ms",
              "p99ms", "errors");
  double scale1 = 0.0, scale4 = 0.0, scale4_p99 = 0.0;
  const int kClients = 16;
  const int kPerClient = 400;
  for (int workers : {1, 2, 4}) {
    serve::FleetConfig config = BaseFleetConfig(micro_ckpt, workers);
    config.max_batch = 1;
    config.max_wait_us = 0;
    config.slo_p99_ms = kFleetSloP99Ms;
    FleetLoopResult run;
    WithFleet(config, [&](serve::Fleet& fleet, int port) {
      (void)fleet;
      run = FleetClosedLoop(port, kClients, kPerClient, workers * 1000000,
                            /*short_pairs=*/true);
    });
    std::printf("%-10s %7d %9d %8d %12.1f %8.3f %8.3f %8.3f %7d\n", "scaling",
                workers, 1, kClients, run.throughput, run.p50_ms, run.p95_ms,
                run.p99_ms, run.errors);
    if (workers == 1) scale1 = run.throughput;
    if (workers == 4) {
      scale4 = run.throughput;
      scale4_p99 = run.p99_ms;
    }
    AppendFleetRunJson("scaling", workers, 1, "fixed", run, &json);
    json += ",\n";
  }

  // --- crash drill: SIGKILL a worker mid-traffic -------------------------
  FleetLoopResult crash;
  int64_t crash_restarts = 0;
  {
    serve::FleetConfig config = BaseFleetConfig(ckpt, 2);
    config.slo_p99_ms = kFleetSloP99Ms;
    WithFleet(config, [&](serve::Fleet& fleet, int port) {
      std::thread killer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        fleet.KillWorker(0, SIGKILL);
      });
      crash = FleetClosedLoop(port, 8, 400, 9000000);
      killer.join();
      fleet.WaitForWorker(0, 1, 10000);
      crash_restarts = fleet.restarts();
    });
    std::printf("%-10s %7d %9d %8d %12.1f %8.3f %8.3f %8.3f %7d\n", "crash", 2,
                8, 8, crash.throughput, crash.p50_ms, crash.p95_ms,
                crash.p99_ms, crash.errors);
    AppendFleetRunJson("crash", 2, 8, "sigkill", crash, &json);
    json += ",\n";
  }

  // --- diurnal: autotune vs fixed batch policies -------------------------
  // Offered load: sinusoid around 7000/s (peak ~12000/s, above what the
  // fixed batch1 policy can serve on 2 workers) plus a 1500-request burst.
  const std::vector<double> schedule =
      DiurnalSchedule(seed, /*seconds=*/5.0, /*mean_rate=*/7000.0,
                      /*swing=*/5000.0, /*period_s=*/4.0,
                      /*burst_size=*/1500, /*burst_at_s=*/2.5);
  struct Policy {
    const char* name;
    int max_batch;
    bool autotune;
  };
  const std::vector<Policy> policies = {
      {"fixed1", 1, false},
      {"fixed8", 8, false},
      {"fixed32", 32, false},
      {"autotune", 1, true},  // worst fixed start; the controller must climb
  };
  double autotune_tput = 0.0, worst_fixed_tput = 0.0;
  for (const Policy& policy : policies) {
    serve::FleetConfig config = BaseFleetConfig(ckpt, 2);
    config.max_batch = policy.max_batch;
    config.autotune = policy.autotune;
    config.slo_p99_ms = kFleetSloP99Ms;
    config.autotune_tick_ms = 400;
    FleetLoopResult run;
    WithFleet(config, [&](serve::Fleet& fleet, int port) {
      (void)fleet;
      run = FleetOpenLoop(port, schedule, /*conns=*/4);
    });
    std::printf("%-10s %7d %9d %8d %12.1f %8.3f %8.3f %8.3f %7d\n",
                policy.name, 2, policy.max_batch, 4, run.throughput,
                run.p50_ms, run.p95_ms, run.p99_ms, run.errors);
    AppendFleetRunJson("diurnal", 2, policy.max_batch, policy.name, run,
                       &json);
    json += &policy == &policies.back() ? "\n" : ",\n";
    if (policy.autotune) {
      autotune_tput = run.throughput;
    } else if (worst_fixed_tput == 0.0 || run.throughput < worst_fixed_tput) {
      worst_fixed_tput = run.throughput;
    }
  }
  std::filesystem::remove(ckpt);
  std::filesystem::remove(micro_ckpt);

  const double scaling = scale1 > 0 ? scale4 / scale1 : 0.0;
  const double autotune_gain =
      worst_fixed_tput > 0 ? autotune_tput / worst_fixed_tput : 0.0;
  const bool p99_ok = scale4_p99 > 0 && scale4_p99 <= kFleetSloP99Ms;
  std::printf("\nheadline: 4-worker scaling %.2fx (p99 %.3fms vs %.0fms SLO), "
              "crash errors %d (restarts %lld), autotune %.2fx worst fixed\n",
              scaling, scale4_p99, kFleetSloP99Ms, crash.errors,
              static_cast<long long>(crash_restarts), autotune_gain);

  char headline[512];
  std::snprintf(
      headline, sizeof(headline),
      "  ],\n  \"headline\": {\"slo_p99_ms\":%.0f,"
      "\"scaling_4v1\":%.2f,\"scale4_p99_ms\":%.3f,\"scale4_p99_within_slo\":"
      "%s,\"crash_errors\":%d,\"crash_restarts\":%lld,"
      "\"autotune_throughput\":%.1f,\"worst_fixed_throughput\":%.1f,"
      "\"autotune_vs_worst_fixed\":%.2f}\n}\n",
      kFleetSloP99Ms, scaling, scale4_p99, p99_ok ? "true" : "false",
      crash.errors, static_cast<long long>(crash_restarts), autotune_tput,
      worst_fixed_tput, autotune_gain);
  json += headline;

  FILE* out = std::fopen("BENCH_fleet.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fleet.json\n");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote BENCH_fleet.json\n");

  const bool gates = scaling >= 2.5 && p99_ok && crash_restarts >= 1 &&
                     autotune_gain >= 1.2;
  return gates ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Chaos bench (--chaos): the §5h failover headline, written to
// BENCH_chaos.json. One seeded FaultSchedule (>= 5 SIGKILLs plus SIGSTOP
// pauses and probabilistic connect/read faults on the router<->worker path)
// is replayed twice against a 3-worker fleet under sustained 8-client
// closed-loop TCP load:
//   baseline   retry_max_attempts=0 — the pre-§5h router; every kill costs
//              the in-flight window as client-visible errors
//   failover   journaled retry + breakers + auto hedging — the same drill
//              must produce ZERO failed client responses
// The gate is the failover arm's zero-loss under >= 5 kills; the baseline
// arm documents what the journal is saving.
// ---------------------------------------------------------------------------

// Closed-loop load until `deadline`: `clients` connections, one outstanding
// request each, every response checked.
FleetLoopResult FleetTimedClosedLoop(int port, int clients,
                                     Clock::time_point deadline,
                                     int id_base) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<int> errors{0};
  std::atomic<int> sent_total{0};
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const int fd = serve::TcpConnectLoopback(port);
      if (fd < 0) return;
      serve::FdStreamBuf buf(fd);
      std::istream in(&buf);
      std::ostream out(&buf);
      for (int i = 0; Clock::now() < deadline; ++i) {
        const int id = id_base + c * 1000000 + i;
        const auto sent = Clock::now();
        out << MatchLine(id);
        out.flush();
        sent_total.fetch_add(1);
        std::string line;
        if (!std::getline(in, line)) {
          errors.fetch_add(1);  // a dropped connection is a failed response
          break;
        }
        if (line.find("\"outcome\":\"ok\"") != std::string::npos) {
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - sent)
                  .count());
        } else {
          errors.fetch_add(1);
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& thread : threads) thread.join();

  FleetLoopResult run;
  run.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  run.requests = sent_total.load();
  run.errors = errors.load();
  std::vector<double> all;
  for (auto& per_conn : latencies) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  FinishFleetRun(all, &run);
  return run;
}

// Fetches the router's {"op":"stats"} aggregate over a fresh connection.
std::map<std::string, std::string> FetchFleetStats(int port) {
  std::map<std::string, std::string> fields;
  const int fd = serve::TcpConnectLoopback(port);
  if (fd < 0) return fields;
  serve::FdStreamBuf buf(fd);
  std::istream in(&buf);
  std::ostream out(&buf);
  out << "{\"op\":\"stats\"}\n";
  out.flush();
  std::string line;
  if (std::getline(in, line)) {
    (void)json::ParseFlatObject(line, &fields);
  }
  ::close(fd);
  return fields;
}

double StatDelta(const std::map<std::string, std::string>& before,
                 const std::map<std::string, std::string>& after,
                 const char* key) {
  const auto get = [&](const std::map<std::string, std::string>& fields) {
    auto it = fields.find(key);
    return it == fields.end() ? 0.0 : std::atof(it->second.c_str());
  };
  return get(after) - get(before);
}

struct ChaosArmResult {
  FleetLoopResult load;
  serve::ChaosDrillStats drill;
  double retries = 0.0, failovers = 0.0, hedges = 0.0, hedge_wins = 0.0;
  double breaker_opened = 0.0, degraded = 0.0;
  int64_t restarts = 0;
};

ChaosArmResult RunChaosArm(const std::string& ckpt,
                           const fault::FaultSchedule& schedule,
                           bool failover, int id_base) {
  serve::FleetConfig config = BaseFleetConfig(ckpt, 3);
  config.slo_p99_ms = kFleetSloP99Ms;
  if (failover) {
    config.hedge_after_ms = -1.0;  // auto: 1.5x the rolling p99
  } else {
    config.retry_max_attempts = 0;  // the pre-§5h router
  }
  ChaosArmResult arm;
  WithFleet(config, [&](serve::Fleet& fleet, int port) {
    const std::map<std::string, std::string> before = FetchFleetStats(port);
    serve::ChaosRunner chaos(&fleet, schedule);
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               schedule.config().duration_s + 0.5));
    chaos.Start();
    arm.load = FleetTimedClosedLoop(port, /*clients=*/8, deadline, id_base);
    chaos.Wait();  // every kill's recovery observed (or timed out)
    chaos.Stop();
    arm.drill = chaos.stats();
    const std::map<std::string, std::string> after = FetchFleetStats(port);
    arm.retries = StatDelta(before, after, "fleet_retry_attempts");
    arm.failovers = StatDelta(before, after, "fleet_retry_failovers");
    arm.hedges = StatDelta(before, after, "fleet_hedge_attempts");
    arm.hedge_wins = StatDelta(before, after, "fleet_hedge_wins");
    arm.breaker_opened = StatDelta(before, after, "fleet_breaker_opened");
    arm.degraded = StatDelta(before, after, "fleet_degraded");
    arm.restarts = fleet.restarts();
  });
  return arm;
}

void AppendChaosArmJson(const char* name, const ChaosArmResult& arm,
                        std::string* out) {
  double min_ms = 0.0, max_ms = 0.0, sum_ms = 0.0;
  for (double ms : arm.drill.recovery_ms) {
    if (min_ms == 0.0 || ms < min_ms) min_ms = ms;
    if (ms > max_ms) max_ms = ms;
    sum_ms += ms;
  }
  const double mean_ms =
      arm.drill.recovery_ms.empty()
          ? 0.0
          : sum_ms / static_cast<double>(arm.drill.recovery_ms.size());
  char buffer[768];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"arm\":\"%s\",\"requests\":%d,\"ok\":%d,\"errors\":%d,"
      "\"elapsed_s\":%.3f,\"ok_throughput\":%.1f,\"p50_ms\":%.3f,"
      "\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"kills\":%d,\"pauses\":%d,"
      "\"unrecovered\":%d,\"recovery_ms_min\":%.1f,\"recovery_ms_mean\":%.1f,"
      "\"recovery_ms_max\":%.1f,\"restarts\":%lld,\"retry_attempts\":%.0f,"
      "\"retry_failovers\":%.0f,\"hedge_attempts\":%.0f,\"hedge_wins\":%.0f,"
      "\"breaker_opened\":%.0f,\"degraded\":%.0f}",
      name, arm.load.requests, arm.load.ok, arm.load.errors,
      arm.load.elapsed_s, arm.load.throughput, arm.load.p50_ms,
      arm.load.p95_ms, arm.load.p99_ms, arm.drill.kills, arm.drill.pauses,
      arm.drill.unrecovered, min_ms, mean_ms, max_ms,
      static_cast<long long>(arm.restarts), arm.retries, arm.failovers,
      arm.hedges, arm.hedge_wins, arm.breaker_opened, arm.degraded);
  *out += buffer;
}

int RunChaosBench(uint64_t seed) {
  const std::string ckpt =
      (std::filesystem::temp_directory_path() /
       ("tm_bench_chaos_" + std::to_string(::getpid()) + ".ckpt"))
          .string();
  {
    llm::SimLlm model = MakeServeModel();
    Status status = model.SaveCheckpoint(ckpt);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  fault::ChaosScheduleConfig drill;
  drill.seed = seed;
  drill.duration_s = 4.5;
  drill.targets = 3;
  drill.kills = 6;       // headline needs >= 5 under sustained load
  drill.pauses = 2;      // SIGSTOP stalls for the hedger
  drill.pause_ms = 150.0;
  drill.connect_fail_rate = 0.05;  // flaky router->worker network
  drill.read_fail_rate = 0.01;
  const fault::FaultSchedule schedule = fault::FaultSchedule::Build(drill);
  std::printf("chaos schedule: %s\n", schedule.ToJson().c_str());
  std::fflush(stdout);

  std::printf("%-10s %9s %7s %7s %12s %8s %8s %8s\n", "arm", "requests",
              "ok", "errors", "ok/s", "p50ms", "p99ms", "recov_ms");
  std::fflush(stdout);
  const auto print_arm = [](const char* name, const ChaosArmResult& arm) {
    double max_ms = 0.0;
    for (double ms : arm.drill.recovery_ms) max_ms = std::max(max_ms, ms);
    std::printf("%-10s %9d %7d %7d %12.1f %8.3f %8.3f %8.1f\n", name,
                arm.load.requests, arm.load.ok, arm.load.errors,
                arm.load.throughput, arm.load.p50_ms, arm.load.p99_ms,
                max_ms);
    // The next arm forks workers; an unflushed stdout buffer would be
    // inherited and re-flushed by every exiting child.
    std::fflush(stdout);
  };

  const ChaosArmResult baseline =
      RunChaosArm(ckpt, schedule, /*failover=*/false, 10000000);
  print_arm("baseline", baseline);
  const ChaosArmResult failover =
      RunChaosArm(ckpt, schedule, /*failover=*/true, 20000000);
  print_arm("failover", failover);
  std::filesystem::remove(ckpt);

  std::printf("\nheadline: %d SIGKILLs under load -> baseline %d failed "
              "responses, failover %d (retries %.0f, failovers %.0f, hedges "
              "%.0f)\n",
              failover.drill.kills, baseline.load.errors,
              failover.load.errors, failover.retries, failover.failovers,
              failover.hedges);

  std::string json = "{\n  \"bench\": \"serve_chaos\",\n  \"schedule\": " +
                     schedule.ToJson() + ",\n  \"arms\": [\n";
  AppendChaosArmJson("baseline", baseline, &json);
  json += ",\n";
  AppendChaosArmJson("failover", failover, &json);
  char headline[384];
  const bool zero_loss = failover.load.errors == 0 &&
                         failover.drill.kills >= 5 &&
                         failover.drill.unrecovered == 0 &&
                         failover.load.ok > 0;
  std::snprintf(
      headline, sizeof(headline),
      "\n  ],\n  \"headline\": {\"kills\":%d,\"baseline_errors\":%d,"
      "\"failover_errors\":%d,\"zero_loss\":%s,\"retry_attempts\":%.0f,"
      "\"hedge_attempts\":%.0f,\"baseline_shows_loss\":%s}\n}\n",
      failover.drill.kills, baseline.load.errors, failover.load.errors,
      zero_loss ? "true" : "false", failover.retries, failover.hedges,
      baseline.load.errors > 0 ? "true" : "false");
  json += headline;

  FILE* out = std::fopen("BENCH_chaos.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_chaos.json\n");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote BENCH_chaos.json\n");
  return zero_loss ? 0 : 1;
}

// --connect PORT: drive a running JSONL server over TCP, verify responses.
int RunSmoke(int port, bool shutdown_server) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("connect");
    ::close(fd);
    return 1;
  }

  std::string request;
  for (int i = 0; i < 16; ++i) {
    request += "{\"id\":\"" + std::to_string(i) +
               "\",\"left\":\"widget pro model " + std::to_string(i) +
               "\",\"right\":\"widget pro model " + std::to_string(i + 1) +
               "\"}\n";
  }
  request += "{\"op\":\"stats\"}\n";
  request += shutdown_server ? "{\"op\":\"shutdown\"}\n" : "{\"op\":\"quit\"}\n";
  const char* p = request.data();
  size_t remaining = request.size();
  while (remaining > 0) {
    ssize_t n = ::write(fd, p, remaining);
    if (n <= 0) {
      std::perror("write");
      ::close(fd);
      return 1;
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }

  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  int ok_lines = 0;
  for (const std::string& line : Split(response, '\n')) {
    if (line.find("\"outcome\":\"ok\"") != std::string::npos) ++ok_lines;
  }
  const bool saw_stats = response.find("\"op\":\"stats\"") != std::string::npos;
  // 16 match responses + the quit/shutdown ack.
  if (ok_lines < 17 || !saw_stats) {
    std::fprintf(stderr, "smoke failed: %d ok lines, stats=%d\nresponse:\n%s",
                 ok_lines, saw_stats ? 1 : 0, response.c_str());
    return 1;
  }
  std::printf("smoke ok: %d ok responses, stats present\n", ok_lines);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 20260809;
  bool fleet = false;
  bool chaos = false;
  bool infer_gate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) seed = std::strtoull(argv[i + 1], nullptr, 10);
    if (arg == "--fleet") fleet = true;
    if (arg == "--chaos") chaos = true;
    if (arg == "--infer-gate") infer_gate = true;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--write-tiny-ckpt" && i + 1 < argc) {
      llm::SimLlm model = MakeServeModel();
      Status status = model.SaveCheckpoint(argv[i + 1]);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", argv[i + 1]);
      return 0;
    }
    if (arg == "--connect" && i + 1 < argc) {
      bool shutdown_server = false;
      for (int j = 1; j < argc; ++j) {
        if (std::string(argv[j]) == "--shutdown") shutdown_server = true;
      }
      return RunSmoke(std::atoi(argv[i + 1]), shutdown_server);
    }
  }
  if (infer_gate) return RunInferGate();
  if (chaos) return RunChaosBench(seed);
  if (fleet) return RunFleetBench(seed);
  return RunSweeps();
}
