// Ablation: per-epoch checkpoint selection. The paper trains for 10 epochs
// with a checkpoint after each epoch and validates each via callbacks
// (Section 2). This ablation prints the per-epoch validation curve and
// compares the best-checkpoint policy against simply taking the final
// epoch, quantifying the value of checkpoint selection.

#include "bench_common.h"

using namespace tailormatch;

int main() {
  bench::BenchEnvironment env;
  bench::PrintHeader(
      "Ablation: checkpoint selection (Llama 8B on WDC small)", env);

  const data::Benchmark& wdc = env.benchmark(data::BenchmarkId::kWdcSmall);
  llm::FamilyProfile profile =
      llm::GetFamilyProfile(llm::ModelFamily::kLlama8B);
  core::FineTuner tuner(profile);

  // Best-checkpoint run (the paper's policy).
  core::FineTuneOptions best_options;
  best_options.valid_max_pairs = env.context().valid_max_pairs;
  if (env.context().epochs_override > 0) {
    best_options.epochs = env.context().epochs_override;
  }
  core::FineTuneResult best = tuner.Run(
      env.zero_shot(llm::ModelFamily::kLlama8B), wdc.train, wdc.valid,
      best_options);

  eval::TablePrinter curve({"Epoch", "Train loss", "Valid F1"});
  for (size_t epoch = 0; epoch < best.stats.epoch_train_loss.size();
       ++epoch) {
    curve.AddRow({StrFormat("%zu", epoch + 1),
                  StrFormat("%.4f", best.stats.epoch_train_loss[epoch]),
                  epoch < best.stats.epoch_valid_score.size()
                      ? StrFormat("%.2f", best.stats.epoch_valid_score[epoch])
                      : "-"});
  }
  curve.Print();

  const double best_f1 = env.TestF1(*best.model, data::BenchmarkId::kWdcSmall);

  // Last-epoch run (no selection).
  core::FineTuneOptions last_options = best_options;
  last_options.valid_max_pairs = 0;  // disables the validation callback
  core::FineTuneResult last = tuner.Run(
      env.zero_shot(llm::ModelFamily::kLlama8B), wdc.train,
      data::Dataset{},  // no validation set => final weights kept
      last_options);
  const double last_f1 = env.TestF1(*last.model, data::BenchmarkId::kWdcSmall);

  std::printf(
      "\nBest-checkpoint policy: epoch %d selected, WDC test F1 %.2f\n"
      "Final-epoch policy:     WDC test F1 %.2f\n"
      "Checkpoint-selection benefit: %+.2f F1\n",
      best.stats.best_epoch + 1, best_f1, last_f1, best_f1 - last_f1);
  return 0;
}
