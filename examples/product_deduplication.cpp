// Product-catalog deduplication: the data-integration scenario that
// motivates entity matching (Section 1). A retailer ingests offers from
// many shops; the same physical product appears under differently
// formatted titles. We fine-tune a simulated LLM on WDC-style data, then
// deduplicate an incoming offer feed by (1) cheap candidate blocking with
// TF-IDF cosine and (2) LLM matching of surviving candidate pairs.

#include <cstdio>
#include <map>
#include <vector>

#include "block/blocker.h"
#include "core/matcher.h"
#include "core/pipeline.h"
#include "data/generator.h"

using namespace tailormatch;

namespace {

// Builds a synthetic offer feed: `num_products` distinct products, each
// listed by 1-3 shops with different surface forms.
struct OfferFeed {
  std::vector<data::Entity> offers;
  std::map<uint64_t, int> true_cluster_sizes;
};

OfferFeed BuildFeed(int num_products, Rng& rng) {
  data::ProductGeneratorConfig config;
  config.id_salt = 777;
  data::ProductGenerator generator(config);
  OfferFeed feed;
  for (int i = 0; i < num_products; ++i) {
    data::Entity base = generator.SampleBase(rng);
    const int listings = rng.NextInt(1, 3);
    for (int listing = 0; listing < listings; ++listing) {
      feed.offers.push_back(
          generator.RenderVariant(base, listing == 0 ? 0.15 : 0.5, rng));
    }
    feed.true_cluster_sizes[base.entity_id] = listings;
  }
  rng.Shuffle(feed.offers);
  return feed;
}

}  // namespace

int main() {
  std::printf("== Product catalog deduplication ==\n");

  // 1) Fine-tune a matcher on WDC-style data.
  core::PipelineConfig config;
  config.family = llm::ModelFamily::kLlama8B;
  config.benchmark = data::BenchmarkId::kWdcSmall;
  core::PipelineReport report = core::RunPipeline(config);
  std::printf("matcher fine-tuned: WDC F1 %.2f (zero-shot %.2f)\n",
              report.fine_tuned_f1, report.zero_shot_f1);
  core::Matcher matcher(report.model);

  // 2) Ingest an offer feed.
  Rng rng(2026);
  OfferFeed feed = BuildFeed(/*num_products=*/40, rng);
  std::printf("offer feed: %zu listings of 40 products\n",
              feed.offers.size());

  // 3) Blocking: only TF-IDF nearest-neighbour candidates reach the
  //    (expensive) LLM matcher.
  block::TfidfKnnBlocker blocker(/*k=*/6);
  std::vector<block::CandidatePair> candidates =
      blocker.CandidatesWithin(feed.offers);
  block::BlockingQuality quality =
      block::EvaluateBlockingWithin(feed.offers, candidates);
  std::printf(
      "blocking kept %zu candidate pairs (reduction %.1f%%, pair "
      "completeness %.1f%%)\n",
      quality.candidates, 100.0 * quality.reduction_ratio,
      100.0 * quality.pair_completeness);

  int matches = 0, correct = 0, wrong = 0;
  for (const block::CandidatePair& candidate : candidates) {
    const data::Entity& left = feed.offers[static_cast<size_t>(candidate.left)];
    const data::Entity& right =
        feed.offers[static_cast<size_t>(candidate.right)];
    core::MatchDecision decision = matcher.Match(left, right);
    if (decision.is_match) {
      ++matches;
      if (left.entity_id == right.entity_id) {
        ++correct;
      } else {
        ++wrong;
      }
    }
  }
  std::printf("LLM matcher: %d match verdicts, %d correct, %d false\n",
              matches, correct, wrong);

  // 4) Show a few verdicts.
  std::printf("\nsample verdicts:\n");
  int shown = 0;
  for (size_t i = 0; i < feed.offers.size() && shown < 3; ++i) {
    for (size_t j = i + 1; j < feed.offers.size() && shown < 3; ++j) {
      if (feed.offers[i].entity_id != feed.offers[j].entity_id) continue;
      core::MatchDecision decision =
          matcher.Match(feed.offers[i], feed.offers[j]);
      std::printf("  [%s] '%s' vs '%s'\n",
                  decision.is_match ? "DUPLICATE" : "distinct ",
                  feed.offers[i].surface.c_str(),
                  feed.offers[j].surface.c_str());
      ++shown;
    }
  }
  return 0;
}
