// Bibliographic record linkage (the DBLP-Scholar scenario): link citation
// records between a clean index and a noisy web-crawled index. Shows the
// cross-domain lesson of Section 3.2 empirically: a matcher fine-tuned on
// scholar data beats both the zero-shot model and a matcher fine-tuned on
// product data when linking citations.

#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "core/fine_tuner.h"
#include "core/matcher.h"
#include "data/benchmark_factory.h"
#include "eval/evaluator.h"
#include "llm/pretrainer.h"

using namespace tailormatch;

namespace {

double LinkF1(const llm::SimLlm& model, const data::Dataset& test_set,
              int max_pairs) {
  eval::EvalOptions options;
  options.max_pairs = max_pairs;
  return eval::EvaluateF1(model, test_set, options);
}

}  // namespace

int main() {
  std::printf("== Citation record linkage (DBLP vs Scholar) ==\n");
  core::ExperimentContext context = core::ExperimentContext::FromEnv();

  data::Benchmark scholar =
      data::BuildBenchmark(data::BenchmarkId::kDblpScholar,
                           context.data_scale);
  data::Benchmark products =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, context.data_scale);

  std::printf("linking %d citation pairs (%d matches)\n",
              scholar.test.size(), scholar.test.CountPositives());

  auto zero_shot =
      llm::GetZeroShotModel(llm::ModelFamily::kLlama8B, context.cache_dir);
  llm::FamilyProfile profile =
      llm::GetFamilyProfile(llm::ModelFamily::kLlama8B);
  core::FineTuner tuner(profile);
  core::FineTuneOptions options;
  options.valid_max_pairs = context.valid_max_pairs;
  if (context.epochs_override > 0) options.epochs = context.epochs_override;

  std::printf("fine-tuning on DBLP-Scholar (%d pairs)...\n",
              scholar.train.size());
  core::FineTuneResult scholar_tuned =
      tuner.Run(*zero_shot, scholar.train, scholar.valid, options);
  std::printf("fine-tuning on WDC products (%d pairs)...\n",
              products.train.size());
  core::FineTuneResult product_tuned =
      tuner.Run(*zero_shot, products.train, products.valid, options);

  const int cap = context.eval_max_pairs;
  const double zero_f1 = LinkF1(*zero_shot, scholar.test, cap);
  const double scholar_f1 = LinkF1(*scholar_tuned.model, scholar.test, cap);
  const double product_f1 = LinkF1(*product_tuned.model, scholar.test, cap);

  std::printf("\nlinkage quality on DBLP-Scholar test pairs (F1):\n");
  std::printf("  zero-shot model:           %.2f\n", zero_f1);
  std::printf("  fine-tuned on scholar:     %.2f\n", scholar_f1);
  std::printf("  fine-tuned on products:    %.2f  <- cross-domain transfer\n",
              product_f1);
  std::printf(
      "\nSection 3.2's lesson: in-domain fine-tuning helps, while a model\n"
      "fine-tuned on another topical domain can fall below zero-shot.\n");

  // Show a linked record pair through the Matcher API.
  core::Matcher matcher(
      std::shared_ptr<llm::SimLlm>(std::move(scholar_tuned.model)));
  for (const data::EntityPair& pair : scholar.test.pairs) {
    if (!pair.label) continue;
    core::MatchDecision decision = matcher.Match(pair);
    std::printf("\nexample link:\n  DBLP:    %s\n  Scholar: %s\n  -> %s "
                "(p=%.3f)\n",
                pair.left.surface.c_str(), pair.right.surface.c_str(),
                decision.response.c_str(), decision.probability);
    break;
  }
  return 0;
}
