// Figure 1 walk-through: the complete TailorMatch fine-tuning and
// inference setup. Each stage of the pipeline prints its artifacts:
// explanation generation (Dimension 1), example filtration and generation
// (Dimension 2), LoRA fine-tuning with per-epoch checkpoints, and
// inference with the Narayan-style answer parser.

#include <cstdio>

#include "core/pipeline.h"
#include "explain/explanation.h"
#include "select/filters.h"
#include "select/generation.h"

using namespace tailormatch;

int main() {
  std::printf("== Figure 1: TailorMatch pipeline overview ==\n");
  core::ExperimentContext context = core::ExperimentContext::FromEnv();

  // Stage 0: benchmark data.
  data::Benchmark wdc =
      data::BuildBenchmark(data::BenchmarkId::kWdcSmall, context.data_scale);
  std::printf("\n[data] WDC Products (small): %d train / %d valid / %d test\n",
              wdc.train.size(), wdc.valid.size(), wdc.test.size());
  const data::EntityPair& sample = wdc.train.pairs.front();
  std::printf("  sample pair (label=%s):\n    E1: %s\n    E2: %s\n",
              sample.label ? "match" : "non-match",
              sample.left.surface.c_str(), sample.right.surface.c_str());

  // Stage 1 (Dimension 1): explanation generation by the teacher LLM.
  explain::ExplanationGenerator structured(
      explain::ExplanationStyle::kStructured);
  std::printf("\n[explanations] structured explanation for the sample:\n  %s\n",
              structured.Generate(sample).text.c_str());

  // Stage 2 (Dimension 2): filtration and example generation.
  llm::TeacherLlm teacher;
  data::Dataset filtered = select::ErrorBasedFilter(wdc.train, teacher);
  data::Dataset generated = select::BuildSyntheticSet(
      wdc.train, data::GetBenchmarkSpec(data::BenchmarkId::kWdcSmall));
  std::printf("\n[selection] error-based filter: %d -> %d pairs\n",
              wdc.train.size(), filtered.size());
  std::printf("[generation] synthetic set: %d -> %d pairs\n",
              wdc.train.size(), generated.size());

  // Stage 3: LoRA fine-tuning with per-epoch checkpoint selection.
  core::PipelineConfig config;
  config.family = llm::ModelFamily::kLlama8B;
  config.benchmark = data::BenchmarkId::kWdcSmall;
  config.explanation_style = explain::ExplanationStyle::kStructured;
  core::PipelineReport report = core::RunPipeline(config);
  std::printf("\n[fine-tuning] llama8b-sim + LoRA + structured explanations\n");
  for (size_t epoch = 0; epoch < report.train_stats.epoch_valid_score.size();
       ++epoch) {
    std::printf("  epoch %zu: train loss %.4f, valid F1 %.2f%s\n", epoch + 1,
                report.train_stats.epoch_train_loss[epoch],
                report.train_stats.epoch_valid_score[epoch],
                static_cast<int>(epoch) == report.train_stats.best_epoch
                    ? "  <- checkpoint selected"
                    : "");
  }

  // Stage 4: inference.
  std::printf("\n[inference] zero-shot F1 %.2f -> fine-tuned F1 %.2f\n",
              report.zero_shot_f1, report.fine_tuned_f1);
  core::Matcher matcher(report.model);
  core::MatchDecision decision = matcher.Match(
      "jarvo evolve kx-80 ms stereo (7899-823-109)",
      "jarvo evolve kx 80 uc stereo headset");
  std::printf("  query response: %s\n", decision.response.c_str());
  std::printf("  parsed verdict: %s (p=%.3f)\n",
              decision.is_match ? "match" : "non-match",
              decision.probability);
  return 0;
}
