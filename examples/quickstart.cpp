// Quickstart: fine-tune a simulated LLM for entity matching on WDC Products
// and query it through the Matcher API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Environment knobs (see src/core/experiment.h): TM_SCALE, TM_EVAL_MAX,
// TM_EPOCHS, TM_CACHE_DIR.

#include <cstdio>
#include <memory>

#include "core/matcher.h"
#include "core/pipeline.h"

int main() {
  using namespace tailormatch;

  core::PipelineConfig config;
  config.family = llm::ModelFamily::kLlama8B;
  config.benchmark = data::BenchmarkId::kWdcSmall;

  std::printf("== TailorMatch quickstart ==\n");
  std::printf("model:     %s\n", llm::ModelFamilyName(config.family));
  std::printf("benchmark: %s (scale %.2f)\n",
              data::BenchmarkName(config.benchmark),
              config.context.data_scale);

  core::PipelineReport report = core::RunPipeline(config);
  std::printf("zero-shot F1:  %.2f\n", report.zero_shot_f1);
  std::printf("fine-tuned F1: %.2f (train size %d)\n", report.fine_tuned_f1,
              report.final_train_size);
  std::printf("best epoch:    %d (valid F1 %.2f)\n",
              report.train_stats.best_epoch, report.train_stats.best_score);

  // Interactive-style queries through the public Matcher API.
  core::Matcher matcher(report.model);
  struct Query {
    const char* left;
    const char* right;
  };
  const Query queries[] = {
      {"jarvo evolve kx-730 headset stereo ms (7899-823-109)",
       "jarvo evolve kx 730 uc stereo headset"},
      {"sprocketx vertex pg-730 cassette 7sp 12-32t",
       "sprocketx vertex pg 1130 cassette 11sp 11-36t"},
  };
  for (const Query& query : queries) {
    core::MatchDecision decision = matcher.Match(query.left, query.right);
    std::printf("\nEntity 1: %s\nEntity 2: %s\n-> %s (p=%.3f)\n", query.left,
                query.right, decision.response.c_str(),
                decision.probability);
  }
  return 0;
}
